//! Table II: system comparison on testbed data — FexIoT vs HAWatcher,
//! DeepLog, and IsolationForest on online interaction graphs built from
//! simulated event logs, half of them vulnerable (internal structural
//! vulnerabilities or HAWatcher-style log-tampering attacks).
//!
//! Each simulated household gets a clean *history* period (baselines fit
//! per home on it, as HAWatcher/DeepLog do in deployment) and a *test*
//! period that is attacked for the externally-vulnerable cases. FexIoT is
//! trained once, federated-style data pooled, on online graphs from separate
//! training households.

use crate::scale::Scale;
use fexiot::{FexIot, FexIotConfig};
use fexiot_graph::attacks::{apply_attack, AttackKind};
use fexiot_graph::builder::{CorpusIndex, FeatureConfig, GraphBuilder};
use fexiot_graph::corpus::{CorpusConfig, CorpusGenerator};
use fexiot_graph::events::{clean_log, CleanEvent, HomeSimulator, SimConfig};
use fexiot_graph::online::{fuse_online, mark_external_vulnerable};
use fexiot_graph::{GraphDataset, InteractionGraph, VulnKind};
use fexiot_ml::{
    DeepLog, DeepLogConfig, HaWatcher, HaWatcherConfig, IForestConfig, IsolationForest, Metrics,
};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// What kind of household a testbed case is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    Benign,
    /// Internal structural vulnerability (one of the six classes).
    Structural,
    /// Externally attacked event log (one of the five attacks).
    Attacked,
}

/// One simulated household in the testbed.
pub struct TestbedCase {
    pub kind: CaseKind,
    /// Online graph fused from the (possibly attacked) test-period log.
    pub online: InteractionGraph,
    /// Clean history-period template sequence (baseline training).
    pub history_templates: Vec<String>,
    /// Test-period template sequence (baseline input).
    pub test_templates: Vec<String>,
    /// History / test cleaned logs (feature extraction for IsolationForest).
    pub history_log: Vec<CleanEvent>,
    pub test_log: Vec<CleanEvent>,
    pub label: usize,
}

fn template_of(e: &CleanEvent) -> String {
    format!("{} {}", e.device.name(), e.state)
}

/// Builds one household case.
fn build_case(
    kind: CaseKind,
    builder: &GraphBuilder,
    index: &CorpusIndex,
    gen: &mut CorpusGenerator,
    rng: &mut Rng,
) -> TestbedCase {
    // Structural cases plant a vulnerability; others resample toward benign.
    let offline = match kind {
        CaseKind::Structural => {
            let k = VulnKind::ALL[rng.usize(VulnKind::ALL.len())];
            builder.sample_vulnerable(k, index, 4 + rng.usize(5), gen, rng)
        }
        _ => {
            let mut g = builder.sample_graph(index, 4 + rng.usize(5), rng);
            for _ in 0..6 {
                if !g.label.as_ref().is_some_and(|l| l.vulnerable) {
                    break;
                }
                g = builder.sample_graph(index, 4 + rng.usize(5), rng);
            }
            g
        }
    };
    let rules: Vec<_> = offline.nodes.iter().map(|n| n.rule.clone()).collect();

    // History period (always clean). Long enough that per-home baselines
    // have real pattern statistics to mine (~100+ cleaned events).
    let mut sim = HomeSimulator::new(rules.clone());
    let cfg = SimConfig {
        duration: 28_800,
        stimulus_interval: 90,
        report_interval: 600,
        error_prob: 0.03,
    };
    let history_raw = sim.run(&cfg, rng);
    let history_log = clean_log(&history_raw);

    // Test period; attacked cases get a random log-tampering attack.
    let mut sim2 = HomeSimulator::new(rules);
    let test_raw = sim2.run(&cfg, rng);
    let test_raw = if kind == CaseKind::Attacked {
        let attack = AttackKind::ALL[rng.usize(AttackKind::ALL.len())];
        apply_attack(attack, &test_raw, 0.35, rng)
    } else {
        test_raw
    };
    let test_log = clean_log(&test_raw);

    let mut online = fuse_online(&offline, &test_log);
    if kind == CaseKind::Attacked {
        mark_external_vulnerable(&mut online);
    }
    let label = usize::from(kind != CaseKind::Benign);

    TestbedCase {
        kind,
        history_templates: history_log.iter().map(template_of).collect(),
        test_templates: test_log.iter().map(template_of).collect(),
        history_log,
        test_log,
        online,
        label,
    }
}

/// Builds `n` cases with the paper's 50% vulnerable mix (half structural,
/// half attacked).
pub fn build_testbed(n: usize, seed: u64) -> Vec<TestbedCase> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut gen = CorpusGenerator::new();
    let rules = gen.generate(&CorpusConfig::small(), &mut rng);
    let index = CorpusIndex::build(rules);
    let builder = GraphBuilder::new(FeatureConfig::small());
    (0..n)
        .map(|i| {
            let kind = match i % 4 {
                0 => CaseKind::Structural,
                1 => CaseKind::Attacked,
                _ => CaseKind::Benign,
            };
            build_case(kind, &builder, &index, &mut gen, &mut rng)
        })
        .collect()
}

/// Windowed log features for the IsolationForest baseline: per time window,
/// `[events, active_fraction, revert_rate, distinct_devices, mean_gap]`.
fn window_features(log: &[CleanEvent], windows: usize) -> Matrix {
    let horizon = log.last().map_or(1, |e| e.time.max(1));
    let w = (horizon / windows as u64).max(1);
    let mut rows = Vec::with_capacity(windows);
    for i in 0..windows {
        let lo = i as u64 * w;
        let hi = lo + w;
        let slice: Vec<&CleanEvent> = log.iter().filter(|e| e.time >= lo && e.time < hi).collect();
        let events = slice.len() as f64;
        let active = slice.iter().filter(|e| e.active).count() as f64 / events.max(1.0);
        let mut reverts = 0usize;
        for pair in slice.windows(2) {
            if pair[0].device == pair[1].device && pair[0].active != pair[1].active {
                reverts += 1;
            }
        }
        let mut devices: Vec<_> = slice.iter().map(|e| e.device).collect();
        devices.sort_unstable();
        devices.dedup();
        let mean_gap = if slice.len() > 1 {
            (slice.last().unwrap().time - slice[0].time) as f64 / (slice.len() - 1) as f64
        } else {
            w as f64
        };
        rows.push(vec![
            events,
            active,
            reverts as f64 / events.max(1.0),
            devices.len() as f64,
            mean_gap / w as f64,
        ]);
    }
    Matrix::from_rows(&rows)
}

/// Quick-revert rate: fraction of device state transitions that are undone
/// within `window` seconds — the live-log signature of action-revert /
/// conflict / loop behavior that HAWatcher-style correlation checking keys
/// on. Benign homes hold states until the next external stimulus; vulnerable
/// cascades undo themselves within seconds.
pub fn quick_revert_rate(seq: &[CleanEvent], window: u64) -> f64 {
    let mut transitions = 0usize;
    let mut reverted = 0usize;
    for (i, e) in seq.iter().enumerate() {
        if e.device.kind.is_sensor() {
            continue; // Sensors flip with the environment; actuators carry the signal.
        }
        transitions += 1;
        if seq[i + 1..]
            .iter()
            .take_while(|f| f.time <= e.time + window)
            .any(|f| f.device == e.device && f.active != e.active)
        {
            reverted += 1;
        }
    }
    if transitions == 0 {
        0.0
    } else {
        reverted as f64 / transitions as f64
    }
}

/// Table II output rows.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub system: &'static str,
    pub metrics: Metrics,
}

/// Runs the full comparison.
pub fn run(scale: Scale) -> Vec<Table2Row> {
    let n_test = scale.pick(80, 600);
    let n_train = scale.pick(120, 600);
    let test = build_testbed(n_test, 70);
    let train = build_testbed(n_train, 71);

    // --- FexIoT: train the pipeline on training-household online graphs.
    let train_graphs: Vec<InteractionGraph> = train
        .iter()
        .map(|c| {
            let mut g = c.online.clone();
            if c.label == 1 && !g.label.as_ref().is_some_and(|l| l.vulnerable) {
                mark_external_vulnerable(&mut g);
            }
            g
        })
        .collect();
    let mut cfg = FexIotConfig::default()
        .with_encoder(fexiot_gnn::EncoderKind::Magnn)
        .with_seed(70);
    cfg.contrastive.epochs = scale.pick(14, 20);
    cfg.contrastive.pairs_per_epoch = scale.pick(192, 320);
    let model = FexIot::train(&GraphDataset::new(train_graphs), cfg);
    let fexiot_preds: Vec<usize> = test
        .iter()
        .map(|c| usize::from(model.detect(&c.online).vulnerable))
        .collect();

    // --- HAWatcher: per-home templates + flap checking.
    let hawatcher_preds: Vec<usize> = test
        .iter()
        .map(|c| {
            let hw = HaWatcher::fit(
                std::slice::from_ref(&c.history_templates),
                HaWatcherConfig {
                    violation_fraction: 0.3,
                    ..Default::default()
                },
            );
            let template_violation = hw.violation_rate(&c.test_templates);
            let quick_revert = quick_revert_rate(&c.test_log, 45);
            usize::from(template_violation > 0.05 || quick_revert > 0.15)
        })
        .collect();

    // --- DeepLog: per-home LSTM on the history sequence.
    let deeplog_preds: Vec<usize> = test
        .iter()
        .map(|c| {
            let hist: Vec<String> = c
                .history_templates
                .iter()
                .take(scale.pick(120, 240))
                .cloned()
                .collect();
            let dl = DeepLog::fit(
                std::slice::from_ref(&hist),
                DeepLogConfig {
                    hidden_dim: 12,
                    epochs: scale.pick(15, 30),
                    ..Default::default()
                },
            );
            let tst: Vec<String> = c
                .test_templates
                .iter()
                .take(scale.pick(120, 240))
                .cloned()
                .collect();
            // Self-calibration: the history period is DeepLog's validation
            // set; a test window is anomalous when its top-k miss rate
            // clearly exceeds the home's own baseline.
            let baseline = dl.miss_rate(&hist);
            usize::from(dl.miss_rate(&tst) > baseline + 0.20)
        })
        .collect();

    // --- IsolationForest: windowed status features, per home.
    let iforest_preds: Vec<usize> = test
        .iter()
        .map(|c| {
            let hist = window_features(&c.history_log, 16);
            let forest = IsolationForest::fit(
                &hist,
                IForestConfig {
                    trees: 40,
                    sample_size: 16,
                    seed: 72,
                },
            );
            let tst = window_features(&c.test_log, 16);
            let scores = forest.scores(&tst);
            let hist_scores = forest.scores(&hist);
            let baseline = fexiot_tensor::stats::mean(&hist_scores);
            let score = fexiot_tensor::stats::mean(&scores);
            usize::from(score > baseline + 0.03)
        })
        .collect();

    let truth: Vec<usize> = test.iter().map(|c| c.label).collect();
    vec![
        Table2Row {
            system: "HAWatcher",
            metrics: Metrics::from_predictions(&hawatcher_preds, &truth),
        },
        Table2Row {
            system: "DeepLog",
            metrics: Metrics::from_predictions(&deeplog_preds, &truth),
        },
        Table2Row {
            system: "IsolationForest",
            metrics: Metrics::from_predictions(&iforest_preds, &truth),
        },
        Table2Row {
            system: "FexIoT",
            metrics: Metrics::from_predictions(&fexiot_preds, &truth),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_balanced_labels() {
        let cases = build_testbed(40, 1);
        let vulnerable = cases.iter().filter(|c| c.label == 1).count();
        assert_eq!(vulnerable, 20);
        assert!(cases.iter().any(|c| c.kind == CaseKind::Structural));
        assert!(cases.iter().any(|c| c.kind == CaseKind::Attacked));
    }

    #[test]
    fn cases_have_logs_and_online_graphs() {
        let cases = build_testbed(8, 2);
        for c in &cases {
            assert!(c.online.node_count() >= 2);
            // Online flag set on every node.
            for n in &c.online.nodes {
                assert_eq!(*n.features.last().unwrap(), 1.0);
            }
        }
        assert!(cases.iter().any(|c| !c.history_templates.is_empty()));
    }

    #[test]
    fn quick_revert_detects_self_undoing_cascades() {
        use fexiot_graph::device::{DeviceKind, Location};
        use fexiot_graph::rule::dev;
        let d = dev(DeviceKind::WaterValve, Location::Kitchen);
        let mk = |t: u64, a: bool| CleanEvent {
            time: t,
            device: d,
            state: if a { "open" } else { "closed" }.into(),
            active: a,
        };
        // Vulnerable cascade: open then close seconds later, repeatedly.
        let flappy: Vec<CleanEvent> = (0..10).map(|i| mk(i * 5, i % 2 == 0)).collect();
        // Benign: state changes hold for minutes.
        let stable: Vec<CleanEvent> = (0..10).map(|i| mk(i * 600, i % 2 == 0)).collect();
        assert!(quick_revert_rate(&flappy, 45) > 0.8);
        assert!(quick_revert_rate(&stable, 45) < 0.1);
    }

    #[test]
    fn window_features_shape() {
        let cases = build_testbed(2, 3);
        let m = window_features(&cases[0].history_log, 8);
        assert_eq!(m.shape(), (8, 5));
        assert!(m.is_finite());
    }
}
