//! Experiment scaling: every bin runs at a laptop-friendly default and at
//! paper scale when `FEXIOT_FULL=1` (or `--full`) is set.

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale defaults used in CI and local runs.
    Small,
    /// Paper-scale sizes (Table I counts, 100 clients, ...).
    Full,
}

impl Scale {
    /// Reads the scale from the environment / argv.
    pub fn from_env() -> Scale {
        let full_env = std::env::var("FEXIOT_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        let full_arg = std::env::args().any(|a| a == "--full");
        if full_env || full_arg {
            Scale::Full
        } else {
            Scale::Small
        }
    }

    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Renders a markdown-ish table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Small.pick(1, 100), 1);
        assert_eq!(Scale::Full.pick(1, 100), 100);
    }
}
