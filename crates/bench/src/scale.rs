//! Experiment scaling: every bin runs at a laptop-friendly default and at
//! paper scale when `FEXIOT_FULL=1` (or `--full`) is set.

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale defaults used in CI and local runs.
    Small,
    /// Paper-scale sizes (Table I counts, 100 clients, ...).
    Full,
}

impl Scale {
    /// Reads the scale from `FEXIOT_FULL` plus an explicit argument slice:
    /// `args` must contain only *boolean flag tokens* (a parser should have
    /// consumed flag values already, so a literal `--full` passed as the
    /// value of another flag is never misread as the scale switch).
    pub fn from_args(args: &[String]) -> Scale {
        let full_env = std::env::var("FEXIOT_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        if full_env || args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Small
        }
    }

    /// [`Scale::from_args`] over the process argv. Convenience for bins
    /// whose only flag is `--full`; binaries with value-taking flags must
    /// parse first and call [`Scale::from_args`] with the leftover boolean
    /// tokens, otherwise `--some-flag --full`'s *value* position would be
    /// scanned too.
    pub fn from_env() -> Scale {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&argv)
    }

    /// Lowercase label used in machine-readable exports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Renders a markdown-ish table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Small.pick(1, 100), 1);
        assert_eq!(Scale::Full.pick(1, 100), 100);
    }

    fn tokens(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_args_scans_only_the_given_slice() {
        // The tests in this binary run without FEXIOT_FULL set; from_args
        // then depends only on the slice.
        if std::env::var("FEXIOT_FULL").map(|v| v == "1").unwrap_or(false) {
            return;
        }
        assert_eq!(Scale::from_args(&tokens(&[])), Scale::Small);
        assert_eq!(Scale::from_args(&tokens(&["--full"])), Scale::Full);
        // A `--full` that was a *value* of another flag never reaches the
        // slice once the caller's parser consumed it.
        assert_eq!(Scale::from_args(&tokens(&["--out-dir", "x"])), Scale::Small);
    }
}
