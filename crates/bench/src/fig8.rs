//! Figure 8: qualitative explanation comparison on two curated interaction
//! graphs — a GCN false positive and a correct detection — reproducing the
//! paper's rule table and the subgraphs each method highlights.

use crate::scale::Scale;
use fexiot::{FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config, mcts_gnn_config, subgraphx_config, Explanation};
use fexiot_graph::builder::{FeatureConfig, GraphBuilder};
use fexiot_graph::device::{Channel, DeviceKind, Location};
use fexiot_graph::rule::{dev, Command, Platform, Rule, Trigger};
use fexiot_graph::{generate_dataset, DatasetConfig, InteractionGraph};
use fexiot_tensor::rng::Rng;

/// One method's output on one example.
pub struct Fig8Entry {
    pub case: usize,
    pub method: &'static str,
    pub explanation: Explanation,
}

/// Builds the two example graphs following the paper's Fig. 8 rule indexes.
pub fn example_graphs() -> Vec<InteractionGraph> {
    let builder = GraphBuilder::new(FeatureConfig::small());
    let mk = |id: u32, trigger: Trigger, actions: Vec<Command>| {
        let text = fexiot_graph::corpus::render_text(Platform::Ifttt, &trigger, &actions);
        Rule {
            id,
            platform: Platform::Ifttt,
            trigger,
            actions,
            text,
        }
    };

    // Example 1 (paper: benign, GCN false positive). The paper's narrative:
    // the door opens, water flow runs with a notification sent, the
    // notification turns the camera on, and the smoke rule opens the door
    // and starts the fan. Rule ids follow Fig. 8's index table; trigger and
    // action details are adapted so the chain is realizable in our world
    // model while staying free of the six vulnerability patterns.
    let door = dev(DeviceKind::Door, Location::Hallway);
    let valve = dev(DeviceKind::WaterValve, Location::Kitchen);
    let camera = dev(DeviceKind::Camera, Location::LivingRoom);
    let fan = dev(DeviceKind::Fan, Location::Kitchen);
    let window = dev(DeviceKind::Window, Location::Kitchen);
    let speaker = dev(DeviceKind::Speaker, Location::LivingRoom);
    let g1 = builder.build_graph(&[
        // 2184: if smoke is detected, unlock the door and start the fan.
        mk(
            2184,
            Trigger::ChannelLevel {
                channel: Channel::Smoke,
                location: Location::Kitchen,
                high: true,
            },
            vec![
                Command {
                    device: door,
                    activate: true,
                },
                Command {
                    device: fan,
                    activate: true,
                },
            ],
        ),
        // 47: door open -> water flow on.
        mk(
            47,
            Trigger::DeviceState {
                device: door,
                active: true,
            },
            vec![Command {
                device: valve,
                activate: true,
            }],
        ),
        // 62: if the fan runs, open the kitchen window.
        mk(
            62,
            Trigger::DeviceState {
                device: fan,
                active: true,
            },
            vec![Command {
                device: window,
                activate: true,
            }],
        ),
        // 1376: water flow detected -> notify the user (speaker).
        mk(
            1376,
            Trigger::ChannelLevel {
                channel: Channel::Water,
                location: Location::Kitchen,
                high: true,
            },
            vec![Command {
                device: speaker,
                activate: true,
            }],
        ),
        // 174: turn the camera on when notified (sound in the living room).
        mk(
            174,
            Trigger::ChannelLevel {
                channel: Channel::Sound,
                location: Location::LivingRoom,
                high: true,
            },
            vec![Command {
                device: camera,
                activate: true,
            }],
        ),
        // 1215: tap to turn off the camera (manual, disconnected by design).
        mk(
            1215,
            Trigger::Manual,
            vec![Command {
                device: camera,
                activate: false,
            }],
        ),
    ]);

    // Example 2 (paper: correct prediction — the camera is turned off within
    // a loop: tap -> camera off -> notification -> camera on -> camera off).
    let plug = dev(DeviceKind::Plug, Location::Bedroom);
    let ac = dev(DeviceKind::AirConditioner, Location::Bedroom);
    let g2 = builder.build_graph(&[
        // 1215: tap to turn off camera.
        mk(
            1215,
            Trigger::Manual,
            vec![Command {
                device: camera,
                activate: false,
            }],
        ),
        // 47: camera off -> record it and send a notification (speaker on).
        mk(
            47,
            Trigger::DeviceState {
                device: camera,
                active: false,
            },
            vec![Command {
                device: speaker,
                activate: true,
            }],
        ),
        // 1177: turn the camera on if notified (speaker active).
        mk(
            1177,
            Trigger::DeviceState {
                device: speaker,
                active: true,
            },
            vec![Command {
                device: camera,
                activate: true,
            }],
        ),
        // 23: camera on -> turn the camera off again (closing the loop).
        mk(
            23,
            Trigger::DeviceState {
                device: camera,
                active: true,
            },
            vec![Command {
                device: camera,
                activate: false,
            }],
        ),
        // 1076: air conditioner if plug is on (context rule).
        mk(
            1076,
            Trigger::DeviceState {
                device: plug,
                active: true,
            },
            vec![Command {
                device: ac,
                activate: true,
            }],
        ),
        // 1291: plugs on if door unlocked (context rule).
        mk(
            1291,
            Trigger::DeviceState {
                device: door,
                active: true,
            },
            vec![Command {
                device: plug,
                activate: true,
            }],
        ),
    ]);

    vec![g1, g2]
}

/// Runs all three explainers on both example graphs; the detector is trained
/// on a standard dataset so the scorer is realistic.
pub fn run(scale: Scale) -> (Vec<Fig8Entry>, Vec<InteractionGraph>) {
    let mut rng = Rng::seed_from_u64(100);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(200, 1000);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let mut cfg = FexIotConfig::default()
        .with_encoder(fexiot_gnn::EncoderKind::Gcn) // paper uses GCN here
        .with_seed(100);
    cfg.contrastive.epochs = scale.pick(8, 14);
    let model = FexIot::train(&ds, cfg);

    let graphs = example_graphs();
    let iters = scale.pick(4, 10);
    let samples = scale.pick(24, 64);
    let mut entries = Vec::new();
    for (case, g) in graphs.iter().enumerate() {
        for (method, cfg) in [
            ("FexIoT", fexiot_config(iters, 3, samples)),
            ("SubgraphX", subgraphx_config(iters, 3, samples)),
            ("MCTS_GNN", mcts_gnn_config(iters, 3)),
        ] {
            entries.push(Fig8Entry {
                case,
                method,
                explanation: explain(model.scorer(), g, &cfg),
            });
        }
    }
    (entries, graphs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::vuln::{detect_vulnerabilities, VulnKind};

    #[test]
    fn example_one_is_benign_example_two_is_loop() {
        let graphs = example_graphs();
        let v1 = detect_vulnerabilities(&graphs[0]);
        // Example 1 has a duplicate-free, loop-free structure in the paper's
        // telling; our encoding keeps it free of loops at minimum.
        assert!(!v1.contains(&VulnKind::ActionLoop), "{v1:?}");
        let v2 = detect_vulnerabilities(&graphs[1]);
        assert!(v2.contains(&VulnKind::ActionLoop), "{v2:?}");
    }

    #[test]
    fn graphs_are_connected_enough_to_explain() {
        for g in example_graphs() {
            assert!(g.edge_count() >= 3, "graph too sparse: {:?}", g.edges);
        }
    }
}
