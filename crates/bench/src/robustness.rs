//! Robustness experiment: accuracy vs fault rate. Sweeps client dropout
//! (with lossy links and corrupted updates riding along at lower rates) and
//! measures how gracefully each aggregation strategy degrades when the
//! federation becomes unreliable.

use crate::scale::Scale;
use fexiot::fed::{Corruption, FaultPlan, Strategy};
use fexiot::{build_federation, FederationConfig, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_ml::Metrics;
use fexiot_tensor::rng::Rng;

/// One cell of the sweep: a strategy trained under a given dropout rate.
#[derive(Debug, Clone)]
pub struct RobustnessPoint {
    pub strategy: &'static str,
    pub dropout: f64,
    pub accuracy: f64,
    pub f1: f64,
    pub total_mb: f64,
    /// Fraction of client-rounds that actually contributed an update.
    pub participation: f64,
    /// Total quarantined updates over the run.
    pub quarantined: usize,
    /// Simulated ticks summed over the run's per-round critical path —
    /// the fault cost the slowest client chain added to each round.
    pub critical_ticks: u64,
}

/// Dropout rates swept (per client, per round).
pub fn dropout_rates() -> Vec<f64> {
    vec![0.0, 0.1, 0.3, 0.5]
}

/// Runs the accuracy-vs-fault-rate sweep.
pub fn run(scale: Scale) -> Vec<RobustnessPoint> {
    let mut rng = Rng::seed_from_u64(77);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(200, 1500);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);

    let strategies = [Strategy::FedAvg, Strategy::fexiot_default()];
    let rounds = scale.pick(5, 40);
    let n_clients = scale.pick(6, 25);

    let mut points = Vec::new();
    for strategy in strategies {
        for &dropout in &dropout_rates() {
            let mut pipeline = FexIotConfig::default().with_seed(77);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(48, 128);
            let faults = if dropout > 0.0 {
                FaultPlan::none()
                    .with_seed(77)
                    .with_dropout(dropout)
                    .with_msg_loss(dropout * 0.3)
                    .with_corruption(dropout * 0.3, Corruption::NonFinite)
            } else {
                FaultPlan::none()
            };
            let config = FederationConfig {
                n_clients,
                alpha: 1.0,
                strategy: strategy.clone(),
                rounds,
                pipeline,
                faults,
                ..Default::default()
            };
            let _cell_span =
                fexiot_obs::span(&format!("bench.robustness[{}:{dropout}]", strategy.name()));
            let mut sim = build_federation(&train, &config);
            if fexiot_obs::global_enabled() {
                sim.attach_obs(std::sync::Arc::clone(fexiot_obs::global()));
            }
            let reports = sim.run();
            let client_rounds: usize = reports.iter().map(|r| r.faults.clients).sum();
            let contributed: usize = reports.iter().map(|r| r.faults.participants).sum();
            let quarantined: usize = reports.iter().map(|r| r.faults.quarantined).sum();
            let critical_ticks = sim.critical_path().iter().map(|e| e.total_ticks).sum();
            let mean = Metrics::mean(&sim.evaluate(&test));
            points.push(RobustnessPoint {
                strategy: strategy.name(),
                dropout,
                accuracy: mean.accuracy,
                f1: mean.f1,
                total_mb: sim.comm.total_mb(),
                participation: contributed as f64 / client_rounds.max(1) as f64,
                quarantined,
                critical_ticks,
            });
        }
    }
    points
}

/// Accuracy lost between the fault-free and the worst-fault runs of a
/// strategy (positive = degradation).
pub fn degradation(points: &[RobustnessPoint], strategy: &str) -> f64 {
    let of = |d: f64| {
        points
            .iter()
            .find(|p| p.strategy == strategy && (p.dropout - d).abs() < 1e-9)
            .map(|p| p.accuracy)
            .unwrap_or(0.0)
    };
    let max_dropout = dropout_rates().last().copied().unwrap_or(0.0);
    of(0.0) - of(max_dropout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells_and_stays_sane() {
        let points = run(Scale::Small);
        assert_eq!(points.len(), 2 * dropout_rates().len());
        for p in &points {
            assert!(
                p.accuracy.is_finite() && (0.0..=1.0).contains(&p.accuracy),
                "{p:?}"
            );
            assert!((0.0..=1.0).contains(&p.participation), "{p:?}");
            if p.dropout == 0.0 {
                assert!((p.participation - 1.0).abs() < 1e-12, "{p:?}");
                assert_eq!(p.quarantined, 0, "{p:?}");
                assert_eq!(p.critical_ticks, 0, "fault-free path must be idle: {p:?}");
            } else {
                assert!(p.participation < 1.0, "faults never fired: {p:?}");
            }
        }
        // Even at 50% dropout the federation must keep learning something:
        // accuracy stays above coin-flip-ish levels rather than collapsing.
        for p in points.iter().filter(|p| p.dropout >= 0.5) {
            assert!(p.accuracy > 0.4, "collapsed under faults: {p:?}");
        }
    }
}
