//! Robustness experiment: accuracy vs fault rate. Sweeps client dropout
//! (with lossy links and corrupted updates riding along at lower rates) and
//! measures how gracefully each aggregation strategy degrades when the
//! federation becomes unreliable.

use crate::scale::Scale;
use fexiot::fed::{Corruption, Failover, FaultPlan, Sampling, Strategy, Topology};
use fexiot::{build_federation, build_federation_with_data, FederationConfig, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_ml::Metrics;
use fexiot_tensor::rng::Rng;

/// One cell of the sweep: a strategy trained under a given dropout rate.
#[derive(Debug, Clone)]
pub struct RobustnessPoint {
    pub strategy: &'static str,
    pub dropout: f64,
    pub accuracy: f64,
    pub f1: f64,
    pub total_mb: f64,
    /// Fraction of client-rounds that actually contributed an update.
    pub participation: f64,
    /// Total quarantined updates over the run.
    pub quarantined: usize,
    /// Simulated ticks summed over the run's per-round critical path —
    /// the fault cost the slowest client chain added to each round.
    pub critical_ticks: u64,
}

/// Dropout rates swept (per client, per round).
pub fn dropout_rates() -> Vec<f64> {
    vec![0.0, 0.1, 0.3, 0.5]
}

/// Runs the accuracy-vs-fault-rate sweep.
pub fn run(scale: Scale) -> Vec<RobustnessPoint> {
    let mut rng = Rng::seed_from_u64(77);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(200, 1500);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);

    let strategies = [Strategy::FedAvg, Strategy::fexiot_default()];
    let rounds = scale.pick(5, 40);
    let n_clients = scale.pick(6, 25);

    let mut points = Vec::new();
    for strategy in strategies {
        for &dropout in &dropout_rates() {
            let mut pipeline = FexIotConfig::default().with_seed(77);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(48, 128);
            let faults = if dropout > 0.0 {
                FaultPlan::none()
                    .with_seed(77)
                    .with_dropout(dropout)
                    .with_msg_loss(dropout * 0.3)
                    .with_corruption(dropout * 0.3, Corruption::NonFinite)
            } else {
                FaultPlan::none()
            };
            let config = FederationConfig {
                n_clients,
                alpha: 1.0,
                strategy: strategy.clone(),
                rounds,
                pipeline,
                faults,
                ..Default::default()
            };
            let _cell_span =
                fexiot_obs::span(&format!("bench.robustness[{}:{dropout}]", strategy.name()));
            let mut sim = build_federation(&train, &config);
            if fexiot_obs::global_enabled() {
                sim.attach_obs(std::sync::Arc::clone(fexiot_obs::global()));
            }
            let reports = sim.run();
            let client_rounds: usize = reports.iter().map(|r| r.faults.clients).sum();
            let contributed: usize = reports.iter().map(|r| r.faults.participants).sum();
            let quarantined: usize = reports.iter().map(|r| r.faults.quarantined).sum();
            let critical_ticks = sim.critical_path().iter().map(|e| e.total_ticks).sum();
            let mean = Metrics::mean(&sim.evaluate(&test));
            points.push(RobustnessPoint {
                strategy: strategy.name(),
                dropout,
                accuracy: mean.accuracy,
                f1: mean.f1,
                total_mb: sim.comm.total_mb(),
                participation: contributed as f64 / client_rounds.max(1) as f64,
                quarantined,
                critical_ticks,
            });
        }
    }
    points
}

/// One cell of the fleet-scale sweep: a sampled, quorum-gated, hierarchical
/// federation of `clients` clients under the given dropout rate.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    pub clients: usize,
    pub dropout: f64,
    /// Mean accuracy over a fixed 24-client probe (evaluating thousands of
    /// clients individually would dwarf the training cost being measured).
    pub accuracy: f64,
    /// Total tree traffic (client links + aggregator trunk) per round.
    pub bytes_per_round: f64,
    /// Fraction of sampled client-rounds that contributed an update.
    pub participation: f64,
    /// Rounds that failed their quorum gate and degraded to a no-op.
    pub quorum_aborts: usize,
    /// Rounds that saw at least one edge aggregator down.
    pub agg_down_rounds: usize,
}

/// Fleet sizes swept: laptop-friendly by default, paper-fleet (100 / 1000 /
/// 2000 clients) at `--full`.
pub fn fleet_sizes(scale: Scale) -> Vec<usize> {
    scale.pick(vec![40, 120], vec![100, 1000, 2000])
}

/// Runs the fleet-scale resilience sweep: every fleet size crossed with
/// every dropout rate, under per-round sampling (fixed cohort), two edge
/// aggregators with ring failover, a 50% quorum gate, and aggregator
/// crashes riding along at a third of the client dropout rate.
pub fn run_fleet(scale: Scale) -> Vec<FleetPoint> {
    let mut rng = Rng::seed_from_u64(77);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(120, 600);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);
    let rounds = scale.pick(4, 15);
    let cohort = scale.pick(12, 64);

    let mut points = Vec::new();
    for &n_clients in &fleet_sizes(scale) {
        for &dropout in &dropout_rates() {
            let mut pipeline = FexIotConfig::default().with_seed(77);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(24, 64);
            let faults = if dropout > 0.0 {
                FaultPlan::none()
                    .with_seed(77)
                    .with_dropout(dropout)
                    .with_agg_crash(dropout * 0.3, 2)
            } else {
                FaultPlan::none()
            };
            let config = FederationConfig {
                n_clients,
                alpha: 1.0,
                strategy: Strategy::FedAvg,
                rounds,
                pipeline,
                faults,
                sampling: Sampling::FixedK(cohort),
                topology: Topology::hierarchical(2, Failover::Reassign),
                quorum: 0.5,
                ..Default::default()
            };
            // Deal graphs round-robin: a Dirichlet split at fleet scale
            // would leave most clients with no data at all.
            let splits: Vec<GraphDataset> = (0..n_clients)
                .map(|i| {
                    let graphs: Vec<_> = train
                        .graphs
                        .iter()
                        .skip(i % train.len())
                        .step_by(n_clients.max(1))
                        .cloned()
                        .collect();
                    GraphDataset::new(if graphs.is_empty() {
                        vec![train.graphs[i % train.len()].clone()]
                    } else {
                        graphs
                    })
                })
                .collect();
            let _cell_span =
                fexiot_obs::span(&format!("bench.fleet[{n_clients}:{dropout}]"));
            let mut sim = build_federation_with_data(splits, &config);
            if fexiot_obs::global_enabled() {
                sim.attach_obs(std::sync::Arc::clone(fexiot_obs::global()));
            }
            let reports = sim.run();
            let sampled: usize = reports.iter().map(|r| r.faults.sampled).sum();
            let contributed: usize = reports.iter().map(|r| r.faults.participants).sum();
            let quorum_aborts = reports.iter().filter(|r| r.faults.quorum_aborted).count();
            let agg_down_rounds = reports.iter().filter(|r| r.faults.agg_down > 0).count();
            let probe: Vec<Metrics> = sim
                .clients
                .iter_mut()
                .take(24)
                .map(|c| c.evaluate(&test))
                .collect();
            points.push(FleetPoint {
                clients: n_clients,
                dropout,
                accuracy: Metrics::mean(&probe).accuracy,
                bytes_per_round: sim.comm.total_bytes() as f64 / rounds as f64,
                participation: contributed as f64 / sampled.max(1) as f64,
                quorum_aborts,
                agg_down_rounds,
            });
        }
    }
    points
}

/// Accuracy lost between the fault-free and the worst-fault runs of a
/// strategy (positive = degradation).
pub fn degradation(points: &[RobustnessPoint], strategy: &str) -> f64 {
    let of = |d: f64| {
        points
            .iter()
            .find(|p| p.strategy == strategy && (p.dropout - d).abs() < 1e-9)
            .map(|p| p.accuracy)
            .unwrap_or(0.0)
    };
    let max_dropout = dropout_rates().last().copied().unwrap_or(0.0);
    of(0.0) - of(max_dropout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells_and_stays_sane() {
        let points = run(Scale::Small);
        assert_eq!(points.len(), 2 * dropout_rates().len());
        for p in &points {
            assert!(
                p.accuracy.is_finite() && (0.0..=1.0).contains(&p.accuracy),
                "{p:?}"
            );
            assert!((0.0..=1.0).contains(&p.participation), "{p:?}");
            if p.dropout == 0.0 {
                assert!((p.participation - 1.0).abs() < 1e-12, "{p:?}");
                assert_eq!(p.quarantined, 0, "{p:?}");
                assert_eq!(p.critical_ticks, 0, "fault-free path must be idle: {p:?}");
            } else {
                assert!(p.participation < 1.0, "faults never fired: {p:?}");
            }
        }
        // Even at 50% dropout the federation must keep learning something:
        // accuracy stays above coin-flip-ish levels rather than collapsing.
        for p in points.iter().filter(|p| p.dropout >= 0.5) {
            assert!(p.accuracy > 0.4, "collapsed under faults: {p:?}");
        }
    }

    #[test]
    fn fleet_sweep_covers_all_cells_and_stays_sane() {
        let points = run_fleet(Scale::Small);
        assert_eq!(
            points.len(),
            fleet_sizes(Scale::Small).len() * dropout_rates().len()
        );
        for p in &points {
            assert!(
                p.accuracy.is_finite() && (0.0..=1.0).contains(&p.accuracy),
                "{p:?}"
            );
            assert!((0.0..=1.0).contains(&p.participation), "{p:?}");
            assert!(p.bytes_per_round > 0.0, "no traffic recorded: {p:?}");
            if p.dropout == 0.0 {
                assert!((p.participation - 1.0).abs() < 1e-12, "{p:?}");
                assert_eq!(p.quorum_aborts, 0, "{p:?}");
                assert_eq!(p.agg_down_rounds, 0, "{p:?}");
            } else {
                assert!(p.participation < 1.0, "faults never fired: {p:?}");
            }
        }
        // Deterministic: the same sweep reproduces the same cells exactly.
        let again = run_fleet(Scale::Small);
        for (a, b) in points.iter().zip(&again) {
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            assert_eq!(a.bytes_per_round.to_bits(), b.bytes_per_round.to_bits());
            assert_eq!(a.quorum_aborts, b.quorum_aborts);
        }
    }
}
