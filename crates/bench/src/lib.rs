//! # fexiot-bench
//!
//! Experiment harness reproducing every table and figure in the paper's
//! evaluation (§IV). Each module implements one experiment; the `src/bin`
//! binaries print paper-style rows, and the Criterion benches time the
//! pipeline stages. All experiments run scaled-down by default and at paper
//! scale with `FEXIOT_FULL=1` / `--full`.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod plot;
pub mod robustness;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod table3;

pub use scale::{print_table, Scale};
