//! Table I: dataset statistics — labeled/unlabeled homogeneous (IFTTT) and
//! heterogeneous (5-platform) interaction-graph sets.

use crate::scale::Scale;
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_tensor::rng::Rng;

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub dataset: &'static str,
    pub label_state: &'static str,
    pub total: usize,
    pub vulnerable: Option<usize>,
    pub min_nodes: usize,
    pub max_nodes: usize,
}

/// Generates all four Table I rows. Unlabeled sets reuse the same generator
/// but report no vulnerability count (the paper marks them `*`).
pub fn run(scale: Scale) -> (Vec<Table1Row>, Vec<GraphDataset>) {
    let mut rng = Rng::seed_from_u64(60);
    let mut rows = Vec::new();
    let mut datasets = Vec::new();

    let specs: Vec<(&'static str, &'static str, DatasetConfig, usize)> = vec![
        (
            "Homo. (IFTTT)",
            "labeled",
            DatasetConfig::small_ifttt(),
            scale.pick(240, 6000),
        ),
        (
            "Homo. (IFTTT)",
            "unlabeled",
            DatasetConfig::small_ifttt(),
            scale.pick(400, 10000),
        ),
        (
            "Hetero. (5 Platforms)",
            "labeled",
            DatasetConfig::small_hetero(),
            scale.pick(500, 12758),
        ),
        (
            "Hetero. (5 Platforms)",
            "unlabeled",
            DatasetConfig::small_hetero(),
            scale.pick(760, 19440),
        ),
    ];

    for (dataset, label_state, mut cfg, count) in specs {
        cfg.graph_count = count;
        if scale == Scale::Full {
            cfg.max_nodes = 50;
        }
        let ds = generate_dataset(&cfg, &mut rng);
        let stats = ds.stats();
        rows.push(Table1Row {
            dataset,
            label_state,
            total: stats.total,
            vulnerable: (label_state == "labeled").then_some(stats.vulnerable),
            min_nodes: stats.min_nodes,
            max_nodes: stats.max_nodes,
        });
        datasets.push(ds);
    }
    (rows, datasets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_proportions() {
        let (rows, _) = run(Scale::Small);
        assert_eq!(rows.len(), 4);
        // Labeled sets report vulnerability counts near the Table I ratios
        // (24.6% IFTTT, 30.0% hetero).
        let ifttt = &rows[0];
        let ratio = ifttt.vulnerable.unwrap() as f64 / ifttt.total as f64;
        assert!(
            (0.18..=0.33).contains(&ratio),
            "IFTTT vulnerable ratio {ratio}"
        );
        assert!(rows[1].vulnerable.is_none());
        assert!(rows[3].vulnerable.is_none());
        // Node counts within the paper's 2-50 envelope.
        for r in &rows {
            assert!(r.min_nodes >= 1);
            assert!(r.max_nodes <= 50);
        }
    }
}
