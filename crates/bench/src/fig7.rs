//! Figure 7: communication cost — total bytes moved between server and
//! clients over the training run, for FedAvg / FMTL / GCFL+ / FexIoT at
//! several federation sizes (paper: 25/50/100 clients, 60 rounds).

use crate::scale::Scale;
use fexiot::{build_federation, FederationConfig, FexIotConfig};
use fexiot_fed::Strategy;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;

/// One bar of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Bar {
    pub strategy: &'static str,
    pub clients: usize,
    pub total_mb: f64,
}

pub fn client_counts(scale: Scale) -> Vec<usize> {
    scale.pick(vec![6, 12, 24], vec![25, 50, 100])
}

/// Runs the cost sweep. Local training uses a realistic budget so the
/// update-norm-based clustering criteria behave as they do in Fig. 4.
pub fn run(scale: Scale) -> Vec<Fig7Bar> {
    let mut rng = Rng::seed_from_u64(90);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(200, 2000);
    let ds = generate_dataset(&ds_cfg, &mut rng);

    let strategies = [
        Strategy::FedAvg,
        Strategy::fmtl_default(),
        Strategy::gcfl_default(),
        Strategy::fexiot_default(),
    ];
    let rounds = scale.pick(6, 60);

    let mut bars = Vec::new();
    for strategy in strategies {
        for &clients in &client_counts(scale) {
            let mut pipeline = FexIotConfig::default().with_seed(90);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(48, 128);
            let config = FederationConfig {
                n_clients: clients,
                alpha: 1.0,
                strategy: strategy.clone(),
                rounds,
                pipeline,
                ..Default::default()
            };
            let mut sim = build_federation(&ds, &config);
            sim.run();
            bars.push(Fig7Bar {
                strategy: strategy.name(),
                clients,
                total_mb: sim.comm.total_mb(),
            });
        }
    }
    bars
}

/// FexIoT's saving relative to FedAvg at the largest federation size.
pub fn fexiot_saving(bars: &[Fig7Bar]) -> f64 {
    let max_clients = bars.iter().map(|b| b.clients).max().unwrap_or(0);
    let of = |name: &str| {
        bars.iter()
            .find(|b| b.strategy == name && b.clients == max_clients)
            .map(|b| b.total_mb)
            .unwrap_or(0.0)
    };
    let fedavg = of("FedAvg");
    let fexiot = of("FexIoT");
    if fedavg > 0.0 {
        1.0 - fexiot / fedavg
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fexiot_saves_traffic() {
        let bars = run(Scale::Small);
        assert_eq!(bars.len(), 4 * client_counts(Scale::Small).len());
        let saving = fexiot_saving(&bars);
        assert!(saving > 0.0, "FexIoT should save vs FedAvg, got {saving}");
        // Costs grow with federation size for every strategy.
        for name in ["FedAvg", "FexIoT"] {
            let series: Vec<f64> = client_counts(Scale::Small)
                .iter()
                .map(|&c| {
                    bars.iter()
                        .find(|b| b.strategy == name && b.clients == c)
                        .unwrap()
                        .total_mb
                })
                .collect();
            assert!(series.windows(2).all(|w| w[0] < w[1]), "{name}: {series:?}");
        }
    }
}
