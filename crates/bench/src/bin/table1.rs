//! Regenerates Table I: statistics of the interaction-graph datasets.
//! `cargo run --release --bin table1 [--full]`

use fexiot_bench::{print_table, table1, Scale};

fn main() {
    let scale = Scale::from_env();
    let (rows, _) = table1::run(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.label_state.to_string(),
                r.total.to_string(),
                r.vulnerable.map_or("*".to_string(), |v| v.to_string()),
                format!("{}-{}", r.min_nodes, r.max_nodes),
            ]
        })
        .collect();
    print_table(
        &format!("Table I: dataset statistics ({scale:?} scale)"),
        &["Type", "Label", "Total Graphs", "Vulnerable", "Nodes"],
        &table,
    );
    println!("\nPaper (full scale): IFTTT 6,000 labeled (1,473 vulnerable) + 10,000 unlabeled;");
    println!("heterogeneous 12,758 labeled (3,828 vulnerable) + 19,440 unlabeled; 2-50 nodes.");
}
