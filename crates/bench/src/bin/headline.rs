// Headline claim check: centralized detection accuracy at paper scale
// ("more than 90% average accuracy for interaction vulnerability detection").
use fexiot::{FexIot, FexIotConfig};
use fexiot_bench::Scale;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::Rng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let mut rng = Rng::seed_from_u64(42);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(400, 6000);
    if scale == Scale::Full {
        ds_cfg.max_nodes = 50;
    }
    let t0 = Instant::now();
    let ds = generate_dataset(&ds_cfg, &mut rng);
    println!(
        "dataset: {} graphs in {:.1}s",
        ds.len(),
        t0.elapsed().as_secs_f64()
    );
    let (train, test) = ds.train_test_split(0.8, &mut rng);
    let mut cfg = FexIotConfig::default().with_seed(42);
    cfg.contrastive.epochs = scale.pick(15, 25);
    cfg.contrastive.pairs_per_epoch = scale.pick(192, 512);
    let t1 = Instant::now();
    let model = FexIot::train(&train, cfg);
    println!(
        "trained in {:.1}s; held-out ({} graphs): {}",
        t1.elapsed().as_secs_f64(),
        test.len(),
        model.evaluate(&test)
    );
}
