//! Regenerates Figure 8: qualitative explanation comparison on two curated
//! interaction graphs, with the rule-index table.
//! `cargo run --release --bin fig8 [--full]`

use fexiot_bench::{fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    let (entries, graphs) = fig8::run(scale);

    for (case, graph) in graphs.iter().enumerate() {
        println!("\n== Figure 8, example {} ==", case + 1);
        println!("rule index table:");
        for (i, node) in graph.nodes.iter().enumerate() {
            println!("  node {i} = rule {:>4}: {}", node.rule.id, node.rule.text);
        }
        println!("edges: {:?}", graph.edges);
        let truth = graph.label.as_ref().expect("labeled");
        println!(
            "ground truth: {}",
            if truth.vulnerable {
                truth
                    .kinds
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            } else {
                "benign".to_string()
            }
        );
        for e in entries.iter().filter(|e| e.case == case) {
            let ids: Vec<u32> = e
                .explanation
                .nodes
                .iter()
                .map(|&i| graph.nodes[i].rule.id)
                .collect();
            println!(
                "  {:<10} highlights rules {:?} (score {:.3}, {} evaluations)",
                e.method, ids, e.explanation.score, e.explanation.evaluations
            );
        }
    }
    println!("\nPaper: on the benign example FexIoT highlights a concise (minor) subgraph");
    println!("while SubgraphX/MCTS_GNN flag larger ones; on the loop example all three");
    println!("find the camera on/off loop, FexIoT most concisely.");
}
