//! Regenerates Figure 4: federated strategies × encoders × Dirichlet α.
//! `cargo run --release --bin fig4 [--full]`

use fexiot_bench::{fig4, print_table, Scale};

fn main() {
    let scale = Scale::from_env();
    let cells = fig4::run(scale, &fig4::ALPHAS);
    for encoder in ["GIN", "GCN"] {
        for metric in ["accuracy", "precision", "recall", "f1"] {
            let mut rows = Vec::new();
            for strategy in ["FexIoT", "GCFL+", "FMTL", "FedAvg", "Client"] {
                let mut row = vec![strategy.to_string()];
                for &alpha in &fig4::ALPHAS {
                    let cell = cells
                        .iter()
                        .find(|c| {
                            c.encoder == encoder && c.strategy == strategy && c.alpha == alpha
                        })
                        .expect("cell exists");
                    let v = match metric {
                        "accuracy" => cell.metrics.accuracy,
                        "precision" => cell.metrics.precision,
                        "recall" => cell.metrics.recall,
                        _ => cell.metrics.f1,
                    };
                    row.push(format!("{v:.3}"));
                }
                rows.push(row);
            }
            print_table(
                &format!("Figure 4: {encoder} {metric} vs Dirichlet α ({scale:?} scale)"),
                &["Method", "α=0.1", "α=1", "α=2", "α=5", "α=10"],
                &rows,
            );
        }
    }
    println!("\nPaper shape: FexIoT best (≈0.89-0.92 acc), GCFL+ and FMTL next, FedAvg");
    println!("≈0.72-0.77, Client ≈0.54-0.62; all methods improve as α grows.");
}
