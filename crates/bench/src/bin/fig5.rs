//! Regenerates Figure 5: scalability box plots over client counts.
//! `cargo run --release --bin fig5 [--full]`

use fexiot_bench::{fig5, print_table, Scale};

fn main() {
    let scale = Scale::from_env();
    let boxes = fig5::run(scale);
    let rows: Vec<Vec<String>> = boxes
        .iter()
        .map(|b| {
            vec![
                b.dataset.to_string(),
                b.clients.to_string(),
                format!("{:.3}", b.summary.min),
                format!("{:.3}", b.summary.q1),
                format!("{:.3}", b.summary.median),
                format!("{:.3}", b.summary.q3),
                format!("{:.3}", b.summary.max),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 5: per-client accuracy distribution ({scale:?} scale)"),
        &["Dataset", "Clients", "Min", "Q1", "Median", "Q3", "Max"],
        &rows,
    );
    println!("\nPaper: IFTTT Q3 ≈ 0.869-0.882 across 25-100 clients; larger federations");
    println!("show wider spread (min 0.8, max 0.977 at 100 clients).");
}
