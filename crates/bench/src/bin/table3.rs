//! Regenerates Table III: runtime efficiency per dataset.
//! `cargo run --release --bin table3 [--full]`

use fexiot_bench::{print_table, table3, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = table3::run(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{}", r.graphs),
                format!("{:.2}", r.graph_construction_s),
                format!("{:.2e}", r.prediction_s),
                format!("{:.2e}", r.analysis_s),
                format!("{:.2}", r.model_mb),
            ]
        })
        .collect();
    print_table(
        &format!("Table III: runtime efficiency ({scale:?} scale)"),
        &[
            "Dataset",
            "Graphs",
            "Construction (s)",
            "Prediction (s)",
            "Analysis (s)",
            "Model (MB)",
        ],
        &table,
    );
    println!("\nPaper: IFTTT 17.19 s construction / 0.52 s prediction / 2.18 s analysis /");
    println!("5.48 MB model; heterogeneous 976.99 s / 0.61 s / 3.64 s / 6.13 MB.");
}
