//! Regenerates Figure 9: Fidelity vs Sparsity of the explanation methods.
//! Writes per-case scatter points to `results/fig9_points.csv`.
//! `cargo run --release --bin fig9 [--full]`

use fexiot_bench::{fig9, print_table, Scale};
use std::io::Write;

fn main() {
    let scale = Scale::from_env();
    let rows = fig9::run(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.to_string(),
                format!("{:.3}", r.mean_fidelity),
                format!("{:.3}", r.mean_sparsity),
                r.points.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 9: explanation quality ({scale:?} scale)"),
        &["Method", "Mean Fidelity", "Mean Sparsity", "Cases"],
        &table,
    );

    std::fs::create_dir_all("results").ok();
    let path = "results/fig9_points.csv";
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(f, "method,fidelity,sparsity").unwrap();
    for r in &rows {
        for (fid, spa) in &r.points {
            writeln!(f, "{},{fid:.4},{spa:.4}", r.method).unwrap();
        }
    }
    println!("wrote scatter points to {path}");
    let names: Vec<&str> = rows.iter().map(|r| r.method).collect();
    let mut points = Vec::new();
    for (s, r) in rows.iter().enumerate() {
        for &(fid, spa) in &r.points {
            points.push((fid, spa, s));
        }
    }
    let svg = "results/fig9_fidelity_sparsity.svg";
    fexiot_bench::plot::scatter_svg(
        svg,
        "Fig. 9: Fidelity vs Sparsity",
        "Fidelity",
        "Sparsity",
        &names,
        &points,
    )
    .expect("write svg");
    println!("wrote scatter figure to {svg}");
    println!("Paper: FexIoT balances fidelity and sparsity (concise yet important");
    println!("subgraphs); half the cases have fidelity > 0.3 with sparsity < 0.7.");
}
