//! Regenerates Figure 3: correlation-discovery classifier comparison.
//! `cargo run --release --bin fig3 [--full]`

use fexiot_bench::{fig3, print_table, Scale};

fn main() {
    let scale = Scale::from_env();
    let results = fig3::run(scale);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.3}", r.metrics.accuracy),
                format!("{:.3}", r.metrics.precision),
                format!("{:.3}", r.metrics.recall),
                format!("{:.3}", r.metrics.f1),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 3: correlation classifiers, cross-validated ({scale:?} scale)"),
        &["Classifier", "Accuracy", "Precision", "Recall", "F1"],
        &rows,
    );
    println!("\nPaper: all four ≥ ~0.95; RandomForest best accuracy 0.984, MLP best recall");
    println!("0.998, KNN best precision 0.997.");
}
