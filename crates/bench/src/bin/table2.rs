//! Regenerates Table II: system comparison on testbed data.
//! `cargo run --release --bin table2 [--full]`

use fexiot_bench::{print_table, table2, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = table2::run(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                format!("{:.2}", r.metrics.accuracy),
                format!("{:.2}", r.metrics.precision),
                format!("{:.2}", r.metrics.recall),
                format!("{:.2}", r.metrics.f1),
            ]
        })
        .collect();
    print_table(
        &format!("Table II: system comparison with testbed data ({scale:?} scale)"),
        &["Method", "Accuracy", "Precision", "Recall", "F1"],
        &table,
    );
    println!("\nPaper: HAWatcher 0.82/0.83/0.87/0.85, DeepLog 0.74/0.78/0.79/0.78,");
    println!("IsolationForest 0.63/0.74/0.61/0.67, FexIoT 0.90/0.90/0.93/0.91.");
}
