//! Robustness sweep: accuracy vs fault rate for FedAvg and FexIoT.
//! `cargo run --release --bin robustness [--full]`
//!
//! Also writes an observability run report (per-cell spans, per-round
//! telemetry counters) to `results/obs/robustness.json`.

use fexiot_bench::{print_table, robustness, Scale};

fn main() {
    let scale = Scale::from_env();
    fexiot_obs::set_global_enabled(true);
    let points = robustness::run(scale);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.strategy.to_string(),
                format!("{:.0}%", p.dropout * 100.0),
                format!("{:.3}", p.accuracy),
                format!("{:.3}", p.f1),
                format!("{:.0}%", p.participation * 100.0),
                format!("{}", p.quarantined),
                format!("{:.2}", p.total_mb),
                format!("{}", p.critical_ticks),
            ]
        })
        .collect();
    print_table(
        &format!("Robustness: accuracy vs fault rate ({scale:?} scale)"),
        &[
            "Method",
            "Dropout",
            "Accuracy",
            "F1",
            "Participation",
            "Quarantined",
            "Comm (MB)",
            "Crit. ticks",
        ],
        &rows,
    );
    for strategy in ["FedAvg", "FexIoT"] {
        println!(
            "{strategy}: accuracy degradation from 0% to 50% dropout: {:+.3}",
            robustness::degradation(&points, strategy)
        );
    }

    // Fleet-scale sweep: sampled cohorts, hierarchical aggregators with
    // failover, and quorum-gated rounds across growing federation sizes.
    let fleet = robustness::run_fleet(scale);
    let fleet_rows: Vec<Vec<String>> = fleet
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.clients),
                format!("{:.0}%", p.dropout * 100.0),
                format!("{:.3}", p.accuracy),
                format!("{:.2}", p.bytes_per_round / (1024.0 * 1024.0)),
                format!("{:.0}%", p.participation * 100.0),
                format!("{}", p.quorum_aborts),
                format!("{}", p.agg_down_rounds),
            ]
        })
        .collect();
    print_table(
        &format!("Fleet scale: sampled + quorum-gated federation ({scale:?} scale)"),
        &[
            "Clients",
            "Dropout",
            "Accuracy",
            "MB/round",
            "Participation",
            "Quorum aborts",
            "Agg-down rounds",
        ],
        &fleet_rows,
    );
    let snap = fexiot_obs::global().snapshot();
    match fexiot_obs::write_report(std::path::Path::new("results/obs"), "robustness", &snap) {
        Ok(path) => println!("obs report written to {}", path.display()),
        Err(e) => eprintln!("cannot write obs report: {e}"),
    }
}
