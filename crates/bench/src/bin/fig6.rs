//! Regenerates Figure 6: representation clustering (k-means + t-SNE) and
//! drifting-sample counts. Writes t-SNE coordinates to
//! `results/fig6_tsne.csv` for plotting.
//! `cargo run --release --bin fig6 [--full]`

use fexiot_bench::{fig6, Scale};
use std::io::Write;

fn main() {
    let scale = Scale::from_env();
    let result = fig6::run(scale);

    println!("== Figure 6: representation analysis ({scale:?} scale) ==");
    println!(
        "k-means (k = 7) purity vs true classes: {:.3}",
        result.purity
    );
    println!(
        "drifting samples found: {} (IFTTT unlabeled), {} (heterogeneous unlabeled)",
        result.drifting_ifttt, result.drifting_hetero
    );
    println!("paper: 63 (IFTTT) and 104 (heterogeneous) at full scale; clusters of the");
    println!("six vulnerability kinds + normal are separable in the latent space.");

    // Per-class cluster composition.
    let k = 7;
    println!("\ncluster x class composition:");
    for c in 0..k {
        let members: Vec<usize> = result
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect();
        let mut counts = vec![0usize; 7];
        for &m in &members {
            counts[result.classes[m].min(6)] += 1;
        }
        println!(
            "  cluster {c}: {counts:?} (benign, bypass, block, revert, loop, conflict, duplicate)"
        );
    }

    std::fs::create_dir_all("results").ok();
    let path = "results/fig6_tsne.csv";
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(f, "x,y,cluster,class").unwrap();
    for i in 0..result.coords.rows() {
        writeln!(
            f,
            "{:.4},{:.4},{},{}",
            result.coords[(i, 0)],
            result.coords[(i, 1)],
            result.clusters[i],
            result.classes[i]
        )
        .unwrap();
    }
    println!("wrote t-SNE coordinates to {path}");

    let class_names = [
        "benign",
        "bypass",
        "block",
        "revert",
        "loop",
        "conflict",
        "duplicate",
        "external",
    ];
    let points: Vec<(f64, f64, usize)> = (0..result.coords.rows())
        .map(|i| {
            (
                result.coords[(i, 0)],
                result.coords[(i, 1)],
                result.classes[i].min(7),
            )
        })
        .collect();
    let svg = "results/fig6_tsne.svg";
    fexiot_bench::plot::scatter_svg(
        svg,
        "Fig. 6: t-SNE of contrastive graph representations",
        "t-SNE 1",
        "t-SNE 2",
        &class_names,
        &points,
    )
    .expect("write svg");
    println!("wrote scatter figure to {svg}");
}
