//! Ablation studies for the design choices called out in DESIGN.md.
//! `cargo run --release --bin ablations [--full]`

use fexiot_bench::{ablation, print_table, Scale};

fn main() {
    let scale = Scale::from_env();

    let agg = ablation::aggregation_ablation(scale);
    print_table(
        &format!("Ablation: aggregation strategy ({scale:?} scale)"),
        &["Strategy", "Accuracy", "Comm (MB)"],
        &agg.iter()
            .map(|r| {
                vec![
                    r.strategy.to_string(),
                    format!("{:.3}", r.accuracy),
                    format!("{:.2}", r.comm_mb),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let contrastive = ablation::contrastive_ablation(scale);
    print_table(
        "Ablation: contrastive training budget",
        &["Epochs", "Accuracy"],
        &contrastive
            .iter()
            .map(|(e, a)| vec![e.to_string(), format!("{a:.3}")])
            .collect::<Vec<_>>(),
    );

    let beam = ablation::beam_ablation(scale);
    print_table(
        "Ablation: explanation beam width × N_min",
        &["Beam", "N_min", "Mean Fidelity", "Mean Sparsity"],
        &beam
            .iter()
            .map(|(b, n, f, s)| {
                vec![
                    b.to_string(),
                    n.to_string(),
                    format!("{f:.3}"),
                    format!("{s:.3}"),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
