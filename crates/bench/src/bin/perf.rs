//! `perf`: continuous benchmark harness. Runs the end-to-end workloads
//! (featurize, gnn_epoch, fed_round, explain, registry_absorb), writes one
//! `fexiot-bench/v1` JSON document plus flamegraph-compatible collapsed
//! stacks per workload, and prints a summary table.
//!
//! ```text
//! perf [--reps N] [--seed S] [--threads T] [--out-dir DIR]
//!      [--refresh-baselines] [--full] [--history FILE | --no-history]
//!      [--history-cap N]
//! perf history [--history FILE]
//! ```
//!
//! `BENCH_<workload>.json` / `BENCH_<workload>.flame` land in `--out-dir`
//! (default: the current directory). `--refresh-baselines` also rewrites the
//! committed baselines under `results/bench/`, which CI diffs against with
//! `obs-diff`. Every run appends one `fexiot-bench-history/v1` JSONL line
//! (run identity + per-workload timing digest) to the history file
//! (default `results/bench/history.jsonl`; `--no-history` skips it, and
//! `--history-cap N` keeps only the newest N lines after appending). The
//! `history` mode prints a per-workload p50 trend summary (first vs newest
//! run, absolute and percent delta) of that file. Build with
//! `--features track-alloc` to fill the `alloc` section with real counters.

use fexiot_bench::perf::{self, timing_summary, PerfConfig};
use fexiot_bench::{print_table, Scale};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: perf [--reps N] [--seed S] [--threads T] [--out-dir DIR] \
     [--refresh-baselines] [--full] [--history FILE | --no-history] [--history-cap N]\n       \
     perf history [--history FILE]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("history") {
        history_summary_main(&argv[1..]);
    }
    let mut reps = 5usize;
    let mut seed = 42u64;
    let mut out_dir = PathBuf::from(".");
    let mut refresh = false;
    let mut history: Option<PathBuf> = Some(PathBuf::from("results/bench/history.jsonl"));
    let mut history_cap = 0usize;
    let mut boolean_tokens: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                i += 1;
                reps = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                let t: usize = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| usage());
                fexiot_par::set_threads(t);
            }
            "--out-dir" => {
                i += 1;
                out_dir = PathBuf::from(argv.get(i).unwrap_or_else(|| usage()));
            }
            "--refresh-baselines" => refresh = true,
            "--history" => {
                i += 1;
                history = Some(PathBuf::from(argv.get(i).unwrap_or_else(|| usage())));
            }
            "--no-history" => history = None,
            "--history-cap" => {
                i += 1;
                history_cap = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c| c > 0)
                    .unwrap_or_else(|| usage());
            }
            // Collected separately so Scale::from_args only ever sees
            // boolean tokens (value positions are consumed above).
            "--full" => boolean_tokens.push("--full".to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if reps == 0 {
        usage();
    }
    let cfg = PerfConfig {
        scale: Scale::from_args(&boolean_tokens),
        reps,
        seed,
        // Resolved after any `--threads` override: CLI flag, else
        // FEXIOT_THREADS, else the machine's available parallelism.
        threads: fexiot_par::pool().threads(),
    };

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("perf: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for workload in perf::WORKLOADS {
        eprintln!(
            "perf: {workload} ({} scale, {} reps + warmup, seed {})",
            cfg.scale.name(),
            cfg.reps,
            cfg.seed
        );
        let report = perf::run_workload(workload, &cfg).expect("known workload");
        let doc = perf::to_json(&report, &cfg);
        debug_assert!(fexiot_obs::diff::validate_bench_report(&doc).is_ok());

        write_or_die(&out_dir.join(format!("BENCH_{workload}.json")), &format!("{doc}\n"));
        write_or_die(
            &out_dir.join(format!("BENCH_{workload}.flame")),
            &report.collapsed,
        );
        if refresh {
            let base_dir = Path::new("results/bench");
            if let Err(e) = std::fs::create_dir_all(base_dir) {
                eprintln!("perf: cannot create {}: {e}", base_dir.display());
                std::process::exit(1);
            }
            write_or_die(&base_dir.join(format!("{workload}.json")), &format!("{doc}\n"));
        }

        let t = timing_summary(&report.timings_us);
        rows.push(vec![
            workload.to_string(),
            cfg.reps.to_string(),
            t.p50.to_string(),
            t.p90.to_string(),
            if report.tracked {
                report.alloc.allocs.to_string()
            } else {
                "-".to_string()
            },
            if report.tracked {
                report.alloc.bytes.to_string()
            } else {
                "-".to_string()
            },
        ]);
        reports.push(report);
    }
    if let Some(path) = &history {
        append_history(path, &reports, &cfg, history_cap);
    }
    print_table(
        "fexiot-bench/v1",
        &["workload", "reps", "p50_us", "p90_us", "allocs", "alloc_bytes"],
        &rows,
    );
    println!("\nbench reports written to {}", out_dir.display());
    if refresh {
        println!("baselines refreshed under results/bench/");
    }
}

fn write_or_die(path: &Path, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("perf: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Appends one history line for this run, then (with `--history-cap N`)
/// trims the file to its newest N lines. Best-effort by design: a missing
/// or read-only history location (e.g. running outside the repo root) must
/// not fail the benchmark run itself.
fn append_history(path: &Path, reports: &[perf::WorkloadReport], cfg: &PerfConfig, cap: usize) {
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = perf::history_line(reports, cfg, unix_ts);
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{line}")?;
        drop(file);
        if cap > 0 {
            let text = std::fs::read_to_string(path)?;
            let capped = perf::cap_history_lines(&text, cap);
            if capped != text {
                std::fs::write(path, capped)?;
            }
        }
        Ok(())
    };
    match write() {
        Ok(()) => println!("history line appended to {}", path.display()),
        Err(e) => eprintln!("perf: history append skipped ({}: {e})", path.display()),
    }
}

/// `perf history [--history FILE]`: render the per-workload p50 trend
/// summary of the append-only history file.
fn history_summary_main(argv: &[String]) -> ! {
    let mut path = PathBuf::from("results/bench/history.jsonl");
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--history" => {
                i += 1;
                path = PathBuf::from(argv.get(i).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    match perf::history_summary(&text) {
        Ok(summary) => {
            print!("{summary}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("perf: {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
