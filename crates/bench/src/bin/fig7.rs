//! Regenerates Figure 7: communication cost vs federation size.
//! `cargo run --release --bin fig7 [--full]`

use fexiot_bench::{fig7, print_table, Scale};

fn main() {
    let scale = Scale::from_env();
    let bars = fig7::run(scale);
    let clients = fig7::client_counts(scale);
    let mut rows = Vec::new();
    for strategy in ["FedAvg", "FMTL", "GCFL+", "FexIoT"] {
        let mut row = vec![strategy.to_string()];
        for &c in &clients {
            let bar = bars
                .iter()
                .find(|b| b.strategy == strategy && b.clients == c)
                .expect("bar exists");
            row.push(format!("{:.2}", bar.total_mb));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("Method".to_string())
        .chain(clients.iter().map(|c| format!("{c} clients (MB)")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 7: total transferred data ({scale:?} scale)"),
        &header_refs,
        &rows,
    );
    println!(
        "\nFexIoT saving vs FedAvg at the largest federation: {:.1}% (paper: 40.2%)",
        fig7::fexiot_saving(&bars) * 100.0
    );
    let groups: Vec<String> = clients.iter().map(|c| format!("{c} clients")).collect();
    let series = ["FedAvg", "FMTL", "GCFL+", "FexIoT"];
    let values: Vec<Vec<f64>> = series
        .iter()
        .map(|s| {
            clients
                .iter()
                .map(|&c| {
                    bars.iter()
                        .find(|b| b.strategy == *s && b.clients == c)
                        .map_or(0.0, |b| b.total_mb)
                })
                .collect()
        })
        .collect();
    std::fs::create_dir_all("results").ok();
    let svg = "results/fig7_communication.svg";
    fexiot_bench::plot::grouped_bars_svg(
        svg,
        "Fig. 7: total transferred data",
        "MB",
        &groups,
        &series,
        &values,
    )
    .expect("write svg");
    println!("wrote bar chart to {svg}");
}
