//! Figure 6: representation analysis — k-means clustering of contrastively
//! learned graph representations with t-SNE projection, and the MAD drift
//! filter counting potential drifting samples in the unlabeled sets.

use crate::scale::Scale;
use fexiot::{FexIot, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_ml::{kmeans, tsne, TsneConfig};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Output of the Fig. 6 analysis.
pub struct Fig6Result {
    /// 2-D t-SNE coordinates for the sampled representations.
    pub coords: Matrix,
    /// k-means cluster assignment per sample (k = 7: benign + 6 vuln kinds).
    pub clusters: Vec<usize>,
    /// True class per sample (0 = benign, 1..=6 = vulnerability kind).
    pub classes: Vec<usize>,
    /// Cluster purity: fraction of samples whose cluster's majority class
    /// matches their own.
    pub purity: f64,
    /// Drifting-sample counts found in the two unlabeled datasets.
    pub drifting_ifttt: usize,
    pub drifting_hetero: usize,
}

/// Trains the representation model, samples representations, clusters and
/// projects them, and runs the drift filter over the unlabeled sets.
pub fn run(scale: Scale) -> Fig6Result {
    let mut rng = Rng::seed_from_u64(80);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(300, 3000);
    let labeled = generate_dataset(&ds_cfg, &mut rng);

    let mut cfg = FexIotConfig::default().with_seed(80);
    cfg.contrastive.epochs = scale.pick(10, 16);
    cfg.contrastive.pairs_per_epoch = scale.pick(128, 256);
    let model = FexIot::train(&labeled, cfg);

    // Sample representations (paper: 1,500).
    let sample_n = scale.pick(200, 1500).min(labeled.len());
    let idx: Vec<usize> = (0..sample_n).collect();
    let sampled: Vec<_> = idx.iter().map(|&i| &labeled.graphs[i]).collect();
    let reps: Vec<Vec<f64>> = sampled
        .iter()
        .map(|g| model.scorer().encoder.embed(g))
        .collect();
    let reps = Matrix::from_rows(&reps);
    let classes: Vec<usize> = sampled.iter().map(|g| GraphDataset::class_of(g)).collect();

    let km = kmeans(&reps, 7, 100, &mut rng);
    let purity = cluster_purity(&km.assignments, &classes, 7);
    let coords = tsne(
        &reps,
        &TsneConfig {
            iterations: scale.pick(150, 400),
            seed: 80,
            ..Default::default()
        },
    );

    // Drift filtering over "unlabeled" datasets (freshly generated, so some
    // graphs carry patterns outside the training distribution).
    let mut unl_ifttt_cfg = DatasetConfig::small_ifttt();
    unl_ifttt_cfg.graph_count = scale.pick(400, 10000);
    let unl_ifttt = generate_dataset(&unl_ifttt_cfg, &mut rng);
    let mut unl_het_cfg = DatasetConfig::small_hetero();
    unl_het_cfg.graph_count = scale.pick(500, 19440);
    let unl_hetero = generate_dataset(&unl_het_cfg, &mut rng);

    // The hetero set has different platform feature dims; drift counting uses
    // the IFTTT-trained encoder only on IFTTT-compatible graphs and a
    // dedicated hetero model otherwise.
    let drifting_ifttt = model.filter_drifting(&unl_ifttt).len();
    let mut het_cfg = FexIotConfig::default()
        .with_encoder(fexiot_gnn::EncoderKind::Magnn)
        .with_seed(81);
    het_cfg.contrastive.epochs = scale.pick(6, 12);
    let mut het_train_cfg = DatasetConfig::small_hetero();
    het_train_cfg.graph_count = scale.pick(300, 3000);
    let het_labeled = generate_dataset(&het_train_cfg, &mut rng);
    let het_model = FexIot::train(&het_labeled, het_cfg);
    let drifting_hetero = het_model.filter_drifting(&unl_hetero).len();

    Fig6Result {
        coords,
        clusters: km.assignments,
        classes,
        purity,
        drifting_ifttt,
        drifting_hetero,
    }
}

/// Majority-vote purity of a clustering against true classes.
pub fn cluster_purity(assignments: &[usize], classes: &[usize], k: usize) -> f64 {
    assert_eq!(assignments.len(), classes.len());
    let n_classes = classes.iter().copied().max().map_or(1, |m| m + 1);
    let mut correct = 0usize;
    for c in 0..k {
        let mut counts = vec![0usize; n_classes];
        for (i, &a) in assignments.iter().enumerate() {
            if a == c {
                counts[classes[i]] += 1;
            }
        }
        correct += counts.iter().max().copied().unwrap_or(0);
    }
    correct as f64 / assignments.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_bounds() {
        assert_eq!(cluster_purity(&[0, 0, 1, 1], &[0, 0, 1, 1], 2), 1.0);
        assert_eq!(cluster_purity(&[0, 1, 0, 1], &[0, 0, 1, 1], 2), 0.5);
    }

    // The full run() is exercised by the fig6 binary; a smoke version here
    // would re-train the pipeline and dominate the unit-test wall clock.
}
