//! Ablations for the design choices DESIGN.md calls out:
//!
//! * layer-wise recursive clustering (FexIoT) vs whole-model clustering
//!   (GCFL+-style) vs no clustering (FedAvg);
//! * contrastive representation + linear head vs the same encoder trained
//!   with a plain supervised objective (approximated by a short contrastive
//!   run — the representation-quality knob);
//! * explanation beam width and N_min sensitivity.

use crate::scale::Scale;
use fexiot::{build_federation, FederationConfig, FexIot, FexIotConfig};
use fexiot_explain::{explain, quality, RewardKind, SearchConfig};
use fexiot_fed::Strategy;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_ml::Metrics;
use fexiot_tensor::rng::Rng;

/// Result of the aggregation ablation.
#[derive(Debug, Clone)]
pub struct AggregationAblation {
    pub strategy: &'static str,
    pub accuracy: f64,
    pub comm_mb: f64,
}

/// Layer-wise vs whole-model clustering vs FedAvg, same data and budget.
pub fn aggregation_ablation(scale: Scale) -> Vec<AggregationAblation> {
    let mut rng = Rng::seed_from_u64(130);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(220, 3000);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);

    let variants: [(&'static str, Strategy, bool); 4] = [
        ("FexIoT", Strategy::fexiot_default(), true),
        ("FexIoT (no cadence)", Strategy::fexiot_default(), false),
        ("GCFL+", Strategy::gcfl_default(), true),
        ("FedAvg", Strategy::FedAvg, true),
    ];
    variants
        .into_iter()
        .map(|(name, strategy, layer_cadence)| {
            let mut pipeline = FexIotConfig::default().with_seed(130);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(48, 128);
            let config = FederationConfig {
                n_clients: 8,
                alpha: 0.5,
                strategy,
                rounds: scale.pick(4, 12),
                pipeline,
                layer_cadence,
                ..Default::default()
            };
            let mut sim = build_federation(&train, &config);
            sim.run();
            let m = Metrics::mean(&sim.evaluate(&test));
            AggregationAblation {
                strategy: name,
                accuracy: m.accuracy,
                comm_mb: sim.comm.total_mb(),
            }
        })
        .collect()
}

/// Representation-quality ablation: detection accuracy as a function of the
/// contrastive training budget (0 epochs = random features + linear head).
pub fn contrastive_ablation(scale: Scale) -> Vec<(usize, f64)> {
    let mut rng = Rng::seed_from_u64(131);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(240, 2000);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);

    scale
        .pick(vec![0, 5, 25], vec![0, 5, 10, 25, 40])
        .into_iter()
        .map(|epochs| {
            let mut cfg = FexIotConfig::default().with_seed(131);
            cfg.contrastive.epochs = epochs;
            let model = FexIot::train(&train, cfg);
            (epochs, model.evaluate(&test).accuracy)
        })
        .collect()
}

/// Beam-width / N_min sensitivity of the explainer: mean sparsity and
/// fidelity per configuration.
pub fn beam_ablation(scale: Scale) -> Vec<(usize, usize, f64, f64)> {
    let mut rng = Rng::seed_from_u64(132);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(160, 800);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let mut cfg = FexIotConfig::default()
        .with_encoder(fexiot_gnn::EncoderKind::Gcn)
        .with_seed(132);
    cfg.contrastive.epochs = scale.pick(12, 16);
    let model = FexIot::train(&ds, cfg);

    let cases: Vec<_> = ds
        .graphs
        .iter()
        .filter(|g| g.node_count() >= 5 && model.detect(g).vulnerable)
        .take(scale.pick(6, 20))
        .collect();

    let mut out = Vec::new();
    for beam in scale.pick(vec![1, 3], vec![1, 3, 8]) {
        for min_nodes in scale.pick(vec![2, 4], vec![2, 3, 4, 6]) {
            let search = SearchConfig {
                iterations: scale.pick(2, 6),
                beam_width: beam,
                min_nodes,
                reward: RewardKind::KernelShap {
                    samples: scale.pick(12, 32),
                },
                ..Default::default()
            };
            let mut fid = 0.0;
            let mut spa = 0.0;
            for g in &cases {
                let e = explain(model.scorer(), g, &search);
                let q = quality(model.scorer(), g, &e.nodes);
                fid += q.fidelity;
                spa += q.sparsity;
            }
            let n = cases.len().max(1) as f64;
            out.push((beam, min_nodes, fid / n, spa / n));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrastive_training_helps() {
        let points = contrastive_ablation(Scale::Small);
        let zero = points.iter().find(|(e, _)| *e == 0).unwrap().1;
        let trained = points.iter().map(|&(_, a)| a).fold(0.0, f64::max);
        assert!(
            trained >= zero - 0.02,
            "trained {trained} should not trail untrained {zero}"
        );
    }

    #[test]
    fn beam_ablation_produces_grid() {
        let grid = beam_ablation(Scale::Small);
        assert_eq!(grid.len(), 4);
        for &(_, min_nodes, fid, spa) in &grid {
            assert!(fid.is_finite());
            assert!((0.0..=1.0).contains(&spa));
            assert!(min_nodes >= 2);
        }
    }
}
