//! Figure 9: Fidelity–Sparsity trade-off of the three explanation methods on
//! randomly picked vulnerable interaction graphs (paper: 50 graphs, GCN
//! detector).

use crate::scale::Scale;
use fexiot::{FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config, mcts_gnn_config, quality, subgraphx_config};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;

/// Mean quality of one method.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub method: &'static str,
    pub mean_fidelity: f64,
    pub mean_sparsity: f64,
    /// Per-case (fidelity, sparsity) points for the scatter.
    pub points: Vec<(f64, f64)>,
}

/// Runs the comparison over detected-vulnerable graphs.
pub fn run(scale: Scale) -> Vec<Fig9Row> {
    let mut rng = Rng::seed_from_u64(110);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = scale.pick(240, 2000);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let (train, test) = ds.train_test_split(0.8, &mut rng);

    let mut cfg = FexIotConfig::default()
        .with_encoder(fexiot_gnn::EncoderKind::Gcn)
        .with_seed(110);
    cfg.contrastive.epochs = scale.pick(8, 14);
    let model = FexIot::train(&train, cfg);

    let cases: Vec<_> = test
        .graphs
        .iter()
        .filter(|g| g.node_count() >= 5 && model.detect(g).vulnerable)
        .take(scale.pick(12, 50))
        .collect();

    let iters = scale.pick(3, 8);
    let samples = scale.pick(16, 48);
    let methods = [
        ("FexIoT", fexiot_config(iters, 3, samples)),
        ("SubgraphX", subgraphx_config(iters, 3, samples)),
        ("MCTS_GNN", mcts_gnn_config(iters, 3)),
    ];

    methods
        .into_iter()
        .map(|(name, search_cfg)| {
            let points: Vec<(f64, f64)> = cases
                .iter()
                .map(|g| {
                    let e = explain(model.scorer(), g, &search_cfg);
                    let q = quality(model.scorer(), g, &e.nodes);
                    (q.fidelity, q.sparsity)
                })
                .collect();
            let mean_fidelity =
                points.iter().map(|p| p.0).sum::<f64>() / points.len().max(1) as f64;
            let mean_sparsity =
                points.iter().map(|p| p.1).sum::<f64>() / points.len().max(1) as f64;
            Fig9Row {
                method: name,
                mean_fidelity,
                mean_sparsity,
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_valid_ranges() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(!r.points.is_empty(), "{} produced no cases", r.method);
            assert!(
                (0.0..=1.0).contains(&r.mean_sparsity),
                "{} sparsity",
                r.method
            );
            assert!(r.mean_fidelity.is_finite());
        }
        // FexIoT's defining property in Fig. 9: concise explanations
        // (sparsity at least as high as the wide-beam baselines).
        let fex = rows.iter().find(|r| r.method == "FexIoT").unwrap();
        let mcts = rows.iter().find(|r| r.method == "MCTS_GNN").unwrap();
        assert!(fex.mean_sparsity >= mcts.mean_sparsity - 0.1);
    }
}
