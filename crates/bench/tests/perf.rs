//! End-to-end check of the perf harness determinism contract: two same-seed
//! runs of a workload must agree on every non-timing field of the
//! `fexiot-bench/v1` document, and `diff_bench_reports` must report no
//! breaking drift between them.
//!
//! Kept as a single test because the harness runs against the global obs
//! registry — concurrent tests would pollute each other's counters.

use fexiot_bench::perf::{self, PerfConfig};
use fexiot_bench::Scale;
use fexiot_obs::diff::{diff_bench_reports, validate_bench_report, DiffConfig, Severity};
use fexiot_obs::profile::parse_collapsed;

#[test]
fn same_seed_runs_are_bit_identical_outside_timing() {
    let cfg = PerfConfig {
        scale: Scale::Small,
        reps: 1,
        seed: 7,
        threads: 1,
    };
    let a = perf::run_workload("featurize", &cfg).expect("known workload");
    let b = perf::run_workload("featurize", &cfg).expect("known workload");

    assert!(!a.items.is_empty(), "workload recorded no counters");
    assert_eq!(a.items, b.items, "counter items drifted between runs");
    assert_eq!(a.tracked, b.tracked);
    if a.tracked {
        assert_eq!(a.alloc, b.alloc, "alloc counters drifted between runs");
    }

    let doc_a = perf::to_json(&a, &cfg);
    let doc_b = perf::to_json(&b, &cfg);
    validate_bench_report(&doc_a).expect("run A produces a valid document");
    validate_bench_report(&doc_b).expect("run B produces a valid document");

    let diff = diff_bench_reports(&doc_a, &doc_b, &DiffConfig::default());
    let breaking: Vec<_> = diff
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Breaking)
        .collect();
    assert!(breaking.is_empty(), "breaking drift between same-seed runs: {breaking:?}");

    // The collapsed stacks parse and cover the workload's span tree.
    let stacks = parse_collapsed(&a.collapsed).expect("collapsed stacks parse");
    assert!(!stacks.is_empty(), "no stacks collected");
    assert!(
        stacks.iter().any(|(path, _)| path.starts_with("pipeline")),
        "pipeline spans missing from {stacks:?}"
    );
}
