//! Criterion benches for federated training: one round per strategy (the
//! Fig. 4 / Fig. 7 inner loop) with identical client data.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fexiot::{build_federation, FederationConfig, FexIotConfig};
use fexiot_fed::Strategy;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::Rng;
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(17);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 120;
    let ds = generate_dataset(&ds_cfg, &mut rng);

    let mut group = c.benchmark_group("federated_round");
    group.sample_size(10);
    for strategy in [
        Strategy::FedAvg,
        Strategy::fmtl_default(),
        Strategy::gcfl_default(),
        Strategy::fexiot_default(),
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter_batched(
                || {
                    let mut pipeline = FexIotConfig::default().with_seed(17);
                    pipeline.contrastive.epochs = 1;
                    pipeline.contrastive.pairs_per_epoch = 16;
                    let config = FederationConfig {
                        n_clients: 6,
                        alpha: 1.0,
                        strategy: strategy.clone(),
                        rounds: 1,
                        pipeline,
                        ..Default::default()
                    };
                    build_federation(&ds, &config)
                },
                |mut sim| black_box(sim.run_round()),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_communication_accounting(c: &mut Criterion) {
    // Near-zero local training isolates the server-side layer recursion and
    // byte-accounting overhead.
    let mut rng = Rng::seed_from_u64(19);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 60;
    let ds = generate_dataset(&ds_cfg, &mut rng);
    c.bench_function("fexiot_layerwise_aggregation_round", |b| {
        b.iter_batched(
            || {
                let mut pipeline = FexIotConfig::default().with_seed(19);
                pipeline.contrastive.epochs = 1;
                pipeline.contrastive.pairs_per_epoch = 1;
                let config = FederationConfig {
                    n_clients: 12,
                    alpha: 1.0,
                    strategy: Strategy::fexiot_default(),
                    rounds: 1,
                    pipeline,
                    ..Default::default()
                };
                build_federation(&ds, &config)
            },
            |mut sim| black_box(sim.run_round()),
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(benches, bench_round, bench_communication_accounting);
criterion_main!(benches);
