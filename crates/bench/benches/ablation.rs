//! Criterion benches for substrate-level design choices: GNN encoder forward
//! cost (GCN vs GIN vs MAGNN) and contrastive step cost — the knobs behind
//! the Fig. 4 encoder comparison and Table III timings.

use criterion::{criterion_group, criterion_main, Criterion};
use fexiot::build_encoder;
use fexiot_gnn::EncoderKind;
use fexiot_graph::{generate_dataset, DatasetConfig, FeatureConfig};
use fexiot_tensor::Rng;
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(37);
    let mut ds_cfg = DatasetConfig::small_hetero();
    ds_cfg.graph_count = 30;
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let hetero = ds
        .graphs
        .iter()
        .find(|g| g.node_count() >= 6)
        .unwrap()
        .clone();

    let mut homo_cfg = DatasetConfig::small_ifttt();
    homo_cfg.graph_count = 30;
    let homo_ds = generate_dataset(&homo_cfg, &mut rng);
    let homo = homo_ds
        .graphs
        .iter()
        .find(|g| g.node_count() >= 6)
        .unwrap()
        .clone();

    let mut group = c.benchmark_group("encoder_forward");
    for kind in [EncoderKind::Gcn, EncoderKind::Gin, EncoderKind::Magnn] {
        let enc = build_encoder(&kind, FeatureConfig::small(), &[32, 32], 16, &mut rng);
        let graph = if kind == EncoderKind::Magnn {
            &hetero
        } else {
            &homo
        };
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| black_box(enc.embed(black_box(graph))));
        });
    }
    group.finish();
}

fn bench_contrastive_step(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(41);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 40;
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let labels: Vec<usize> = ds
        .graphs
        .iter()
        .map(fexiot_graph::GraphDataset::binary_label)
        .collect();
    c.bench_function("contrastive_epoch_16_pairs", |b| {
        b.iter(|| {
            let mut enc = build_encoder(
                &EncoderKind::Gin,
                FeatureConfig::small(),
                &[16],
                8,
                &mut rng,
            );
            let cfg = fexiot_gnn::ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 16,
                ..Default::default()
            };
            black_box(fexiot_gnn::train_contrastive(
                &mut enc, &ds.graphs, &labels, &cfg,
            ))
        });
    });
}

criterion_group!(benches, bench_encoders, bench_contrastive_step);
criterion_main!(benches);
