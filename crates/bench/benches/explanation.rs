//! Criterion benches for the explanation stage (Table III's "Vulnerability
//! Analysis Time" and the Fig. 9 method comparison): kernel SHAP evaluation
//! and the three subgraph-search methods.

use criterion::{criterion_group, criterion_main, Criterion};
use fexiot::{FexIot, FexIotConfig};
use fexiot_explain::{
    explain, fexiot_config, mcts_gnn_config, shap_value, subgraphx_config, ShapConfig,
};
use fexiot_graph::{generate_dataset, DatasetConfig, InteractionGraph};
use fexiot_tensor::Rng;
use std::hint::black_box;

fn setup() -> (FexIot, InteractionGraph) {
    let mut rng = Rng::seed_from_u64(29);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 80;
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let mut cfg = FexIotConfig::default().with_seed(29);
    cfg.contrastive.epochs = 3;
    let model = FexIot::train(&ds, cfg);
    let graph = ds
        .graphs
        .iter()
        .find(|g| g.node_count() >= 6 && g.edge_count() >= 5)
        .expect("mid-size graph")
        .clone();
    (model, graph)
}

fn bench_shap(c: &mut Criterion) {
    let (model, graph) = setup();
    c.bench_function("kernel_shap_value_32_samples", |b| {
        let mut rng = Rng::seed_from_u64(31);
        b.iter(|| {
            black_box(shap_value(
                model.scorer(),
                &graph,
                &[0, 1],
                &ShapConfig { samples: 32 },
                &mut rng,
            ))
        });
    });
}

fn bench_methods(c: &mut Criterion) {
    let (model, graph) = setup();
    let mut group = c.benchmark_group("explanation_methods");
    group.sample_size(10);
    for (name, cfg) in [
        ("FexIoT_mcbs", fexiot_config(2, 3, 16)),
        ("SubgraphX", subgraphx_config(2, 3, 16)),
        ("MCTS_GNN", mcts_gnn_config(2, 3)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(explain(model.scorer(), &graph, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shap, bench_methods);
criterion_main!(benches);
