//! Criterion benches for the core pipeline stages (Table III's rows):
//! dataset/graph construction, correlation features, model prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fexiot::{FexIot, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_nlp::{parse_rule, Lexicon, PairFeatureExtractor};
use fexiot_tensor::Rng;
use std::hint::black_box;

fn bench_graph_construction(c: &mut Criterion) {
    c.bench_function("dataset_generation_ifttt_40_graphs", |b| {
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                Rng::seed_from_u64(seed)
            },
            |mut rng| {
                let mut cfg = DatasetConfig::small_ifttt();
                cfg.graph_count = 40;
                black_box(generate_dataset(&cfg, &mut rng))
            },
            BatchSize::LargeInput,
        );
    });
    c.bench_function("dataset_generation_hetero_40_graphs", |b| {
        let mut seed = 100u64;
        b.iter_batched(
            || {
                seed += 1;
                Rng::seed_from_u64(seed)
            },
            |mut rng| {
                let mut cfg = DatasetConfig::small_hetero();
                cfg.graph_count = 40;
                black_box(generate_dataset(&cfg, &mut rng))
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_correlation_features(c: &mut Criterion) {
    let lex = Lexicon::new();
    let extractor = PairFeatureExtractor::with_word_dim(32);
    let a = parse_rule("Turn on the kitchen water valve if smoke is detected", &lex);
    let b_rule = parse_rule("Send a notification when the water valve is open", &lex);
    c.bench_function("pair_features", |bch| {
        bch.iter(|| black_box(extractor.pair_features(&a, &b_rule, &lex)));
    });
}

fn bench_prediction(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(7);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 80;
    let ds = generate_dataset(&cfg, &mut rng);
    let mut pipe_cfg = FexIotConfig::default().with_seed(7);
    pipe_cfg.contrastive.epochs = 3;
    let model = FexIot::train(&ds, pipe_cfg);
    let graph = ds.graphs.iter().find(|g| g.node_count() >= 6).unwrap();

    c.bench_function("prediction_per_graph", |b| {
        b.iter(|| black_box(model.detect(black_box(graph))));
    });
}

criterion_group!(
    benches,
    bench_graph_construction,
    bench_correlation_features,
    bench_prediction
);
criterion_main!(benches);
