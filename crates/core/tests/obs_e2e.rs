//! End-to-end observability: a tiny federated run with the global registry
//! enabled must export a well-formed run report whose span tree covers the
//! data pipeline and the federated rounds, and whose non-timing fields are
//! bit-identical across two same-seed runs.

use fexiot::{build_federation, FederationConfig, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_obs::{deterministic_json, validate_report, Json, Snapshot, Timing};
use fexiot_tensor::Rng;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the tests in this binary: they all mutate the process-global
/// registry.
static GLOBAL_OBS: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    GLOBAL_OBS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Generates a dataset, builds a 2-client federation, and runs one round
/// with the global registry attached; returns the registry snapshot.
fn tiny_run(seed: u64) -> Snapshot {
    let reg = fexiot_obs::global();
    reg.reset();
    fexiot_obs::set_global_enabled(true);

    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 40;
    let ds = generate_dataset(&cfg, &mut rng);
    let (train, _test) = ds.train_test_split(0.8, &mut rng);

    let mut pipeline = FexIotConfig::default().with_seed(seed);
    pipeline.contrastive.epochs = 1;
    pipeline.contrastive.pairs_per_epoch = 8;
    let config = FederationConfig {
        n_clients: 2,
        rounds: 1,
        pipeline,
        ..Default::default()
    };
    let mut sim = build_federation(&train, &config);
    sim.attach_obs(Arc::clone(reg));
    sim.run();

    let snap = reg.snapshot();
    fexiot_obs::set_global_enabled(false);
    snap
}

#[test]
fn report_covers_pipeline_and_round_tree() {
    let _g = obs_lock();
    let snap = tiny_run(11);

    // Span tree roots: the data pipeline and the federated round, with
    // per-client training spans nested under the round.
    assert!(snap.find_span("pipeline").is_some(), "pipeline root missing");
    let round = snap
        .roots
        .iter()
        .find(|r| r.name == "round[0]")
        .expect("round[0] root missing");
    for c in 0..2 {
        assert!(
            round.children.iter().any(|s| s.name == format!("client[{c}]")),
            "client[{c}] span missing under round[0]"
        );
    }
    // RoundTelemetry counters folded into the same registry.
    assert_eq!(snap.counters["fed.sim.participants"], 2);
    assert!(snap.histograms.contains_key("fed.round.loss"));

    // The exported JSON parses and conforms to fexiot-obs/v1.
    let doc = fexiot_obs::report::to_json(&snap, "e2e", Timing::Include);
    validate_report(&doc).expect("report validates");
    let reparsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
    assert!(reparsed.get("spans").is_some());

    // write_report round-trips through the filesystem.
    let dir = std::env::temp_dir().join(format!("fexiot-obs-e2e-{}", std::process::id()));
    let path = fexiot_obs::write_report(&dir, "e2e", &snap).expect("write report");
    let text = std::fs::read_to_string(&path).expect("read report back");
    validate_report(&Json::parse(&text).expect("written report parses"))
        .expect("written report validates");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_seed_runs_export_identical_nontiming_reports() {
    let _g = obs_lock();
    let a = tiny_run(12);
    let b = tiny_run(12);
    let da = deterministic_json(&a, "e2e");
    let db = deterministic_json(&b, "e2e");
    assert!(!da.contains("elapsed_us"), "timing leaked into Timing::Exclude");
    assert_eq!(da, db, "same-seed obs reports differ in non-timing fields");
}

/// A `Write` sink the test can read back after the registry consumed it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// [`tiny_run`] with a timing-excluded JSONL event stream attached; returns
/// the raw bytes the stream produced.
fn tiny_run_streamed(seed: u64) -> Vec<u8> {
    let reg = fexiot_obs::global();
    reg.reset();
    fexiot_obs::set_global_enabled(true);
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    reg.set_stream(Box::new(buf.clone()), "e2e-stream", false);

    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 40;
    let ds = generate_dataset(&cfg, &mut rng);
    let (train, _test) = ds.train_test_split(0.8, &mut rng);
    let mut pipeline = FexIotConfig::default().with_seed(seed);
    pipeline.contrastive.epochs = 1;
    pipeline.contrastive.pairs_per_epoch = 8;
    let config = FederationConfig {
        n_clients: 2,
        rounds: 1,
        pipeline,
        ..Default::default()
    };
    let mut sim = build_federation(&train, &config);
    sim.attach_obs(Arc::clone(reg));
    sim.run();

    drop(reg.take_stream());
    fexiot_obs::set_global_enabled(false);
    let out = buf.0.lock().unwrap().clone();
    out
}

#[test]
fn same_seed_event_streams_are_byte_identical_and_parse() {
    let _g = obs_lock();
    let a = tiny_run_streamed(13);
    let b = tiny_run_streamed(13);
    assert!(!a.is_empty(), "stream produced no events");
    assert_eq!(a, b, "same-seed timing-excluded streams differ");

    let text = String::from_utf8(a).expect("stream is UTF-8");
    assert!(
        !text.contains("elapsed_us") && !text.contains("step_us"),
        "wall-clock data leaked into a timing-excluded stream"
    );
    let (run, events) = fexiot_obs::stream::parse_stream(&text).expect("stream parses");
    assert_eq!(run, "e2e-stream");
    // The stream must cover the whole pipeline: spans, counters, and the
    // round-boundary marker all show up as live events.
    let names: Vec<&str> = events.iter().map(|e| e.event.name()).collect();
    assert!(names.contains(&"pipeline"), "pipeline span not streamed");
    assert!(names.contains(&"round[0]"), "round marker not streamed");
    assert!(
        names.contains(&"fed.sim.participants"),
        "participant counter not streamed"
    );
}

#[test]
fn federated_report_carries_the_critical_path() {
    let _g = obs_lock();
    let reg = fexiot_obs::global();
    reg.reset();
    fexiot_obs::set_global_enabled(true);

    let mut rng = Rng::seed_from_u64(14);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 40;
    let ds = generate_dataset(&cfg, &mut rng);
    let (train, _test) = ds.train_test_split(0.8, &mut rng);
    let mut pipeline = FexIotConfig::default().with_seed(14);
    pipeline.contrastive.epochs = 1;
    pipeline.contrastive.pairs_per_epoch = 8;
    let mut config = FederationConfig {
        n_clients: 3,
        rounds: 2,
        pipeline,
        ..Default::default()
    };
    config.faults = config.faults.with_seed(7).with_straggler(0.9);
    let mut sim = build_federation(&train, &config);
    sim.attach_obs(Arc::clone(reg));
    sim.run();
    let path = sim.critical_path();
    let snap = reg.snapshot();
    fexiot_obs::set_global_enabled(false);

    assert_eq!(path.len(), 2);
    assert!(
        path.iter().any(|e| e.cause == "straggler"),
        "a 0.9 straggler rate must land on the critical path"
    );

    let doc = fexiot_obs::report::to_json_full(&snap, "e2e-cp", Timing::Include, Some(&path));
    validate_report(&doc).expect("report with critical_path validates");
    let reparsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
    let cp = reparsed
        .get("critical_path")
        .and_then(Json::as_arr)
        .expect("critical_path array present");
    assert_eq!(cp.len(), 2);

    // The rendered summary names the slowest client.
    let text = fexiot_obs::render_summary_with(&snap, Some(&path));
    assert!(text.contains("critical path"), "summary lacks the path:\n{text}");
    assert!(text.contains("straggler"), "summary lacks the cause:\n{text}");
}

#[test]
fn collapsed_stacks_round_trip_against_report_span_paths() {
    let _g = obs_lock();
    let snap = tiny_run(15);

    let collapsed = fexiot_obs::collapsed_stacks(&snap);
    let stacks = fexiot_obs::profile::parse_collapsed(&collapsed).expect("collapsed output parses");
    assert!(!stacks.is_empty(), "no collapsed stacks collected");

    // Every stack path in the flame export must name a span path that the
    // run report also carries — the two exports describe one tree.
    let doc = fexiot_obs::report::to_json(&snap, "e2e-flame", Timing::Include);
    let report_paths = fexiot_obs::profile::report_span_paths(&doc);
    assert!(
        report_paths.iter().any(|p| p == "pipeline;pipeline.featurize"),
        "expected pipeline paths in the report, got {report_paths:?}"
    );
    for (path, _us) in &stacks {
        assert!(
            report_paths.contains(path),
            "flame path {path:?} missing from the report span tree"
        );
    }
    // And the flame export covers every report path, too (same tree, both
    // directions).
    let flame_paths: Vec<&String> = stacks.iter().map(|(p, _)| p).collect();
    for p in &report_paths {
        assert!(
            flame_paths.contains(&p),
            "report span path {p:?} missing from the flame export"
        );
    }
}
