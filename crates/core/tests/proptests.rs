//! Cross-crate property tests: dataset invariants, explanation invariants,
//! SHAP axioms against the live pipeline, and masking consistency.

use fexiot::{FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config, mask_graph, shap_value, ShapConfig};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_tensor::Rng;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared trained pipeline — training per proptest case would be wasteful.
fn model() -> &'static (FexIot, GraphDataset) {
    static MODEL: OnceLock<(FexIot, GraphDataset)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut rng = Rng::seed_from_u64(99);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 120;
        let ds = generate_dataset(&cfg, &mut rng);
        let mut pipe = FexIotConfig::default().with_seed(99);
        pipe.contrastive.epochs = 4;
        (FexIot::train(&ds, pipe), ds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dataset_generation_invariants(seed in 0u64..200, count in 10usize..40) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = count;
        let ds = generate_dataset(&cfg, &mut rng);
        prop_assert_eq!(ds.len(), count);
        for g in &ds.graphs {
            prop_assert!(g.node_count() >= 1);
            prop_assert!(g.node_count() <= cfg.max_nodes);
            for &(a, b) in &g.edges {
                prop_assert!(a < g.node_count() && b < g.node_count());
            }
            prop_assert!(g.label.is_some());
            // Label must agree with the structural detector (idempotent).
            let redetect = fexiot_graph::detect_vulnerabilities(g);
            let label = g.label.as_ref().unwrap();
            if label.kinds.is_empty() {
                // Either benign or externally-marked; internal detector agrees
                // with benign labels.
                if !label.vulnerable {
                    prop_assert!(redetect.is_empty());
                }
            } else {
                prop_assert_eq!(&redetect, &label.kinds);
            }
        }
    }

    #[test]
    fn dirichlet_split_partitions(seed in 0u64..100, clients in 1usize..12, alpha in 0.1f64..10.0) {
        let (_, ds) = model();
        let mut rng = Rng::seed_from_u64(seed);
        let splits = ds.dirichlet_split(clients, alpha, &mut rng);
        prop_assert_eq!(splits.len(), clients);
        let total: usize = splits.iter().map(GraphDataset::len).sum();
        prop_assert_eq!(total, ds.len());
    }

    #[test]
    fn detection_scores_are_probabilities(idx in 0usize..120) {
        let (model, ds) = model();
        let g = &ds.graphs[idx % ds.len()];
        let d = model.detect(g);
        prop_assert!((0.0..=1.0).contains(&d.score));
        prop_assert_eq!(d.vulnerable, d.score >= 0.5);
    }

    #[test]
    fn explanation_nodes_within_graph(seed in 0u64..40) {
        let (model, ds) = model();
        let g = ds
            .graphs
            .iter()
            .cycle()
            .skip(seed as usize)
            .find(|g| g.node_count() >= 4)
            .unwrap();
        let mut cfg = fexiot_config(2, 3, 8);
        cfg.seed = seed;
        let e = explain(model.scorer(), g, &cfg);
        prop_assert!(!e.nodes.is_empty());
        prop_assert!(e.nodes.len() <= g.node_count());
        prop_assert!(e.nodes.iter().all(|&i| i < g.node_count()));
        // Sorted and unique.
        prop_assert!(e.nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn full_player_shap_equals_efficiency_gap(seed in 0u64..30) {
        // With the whole graph as one player, SHAP must equal f(full) - f(empty).
        let (model, ds) = model();
        let g = &ds.graphs[(seed as usize * 7) % ds.len()];
        let all: Vec<usize> = (0..g.node_count()).collect();
        let mut rng = Rng::seed_from_u64(seed);
        let phi = shap_value(model.scorer(), g, &all, &ShapConfig { samples: 16 }, &mut rng);
        let n = g.node_count();
        let full = model.scorer().score_with_nodes(g, &vec![true; n]);
        let empty = model.scorer().score_with_nodes(g, &vec![false; n]);
        prop_assert!((phi - (full - empty)).abs() < 1e-9);
    }

    #[test]
    fn masking_everything_zeroes_features(idx in 0usize..120) {
        let (_, ds) = model();
        let g = &ds.graphs[idx % ds.len()];
        let masked = mask_graph(g, &vec![false; g.node_count()]);
        prop_assert!(masked.edges.is_empty());
        for n in &masked.nodes {
            prop_assert!(n.features.iter().all(|&f| f == 0.0));
        }
    }
}
