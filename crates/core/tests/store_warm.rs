//! Integration locks for the artifact store (`fexiot-store`):
//!
//! 1. **Thread-width invariance** — store keys AND blob bytes written at
//!    widths 1, 2, and 7 are identical, so a warm run at any `--threads`
//!    hits what any cold run wrote. Keys are pure functions of
//!    configuration; blob bytes inherit the pipeline's width-invariance.
//! 2. **Checkpoint fidelity** — a federation checkpoint pushed through the
//!    store (serialize → blob → manifest → reopen → verify-on-read) restores
//!    a simulator that continues bit-exactly with an uninterrupted run.
//!
//! Like `par_determinism`, these tests sequence [`fexiot_par::set_threads`]
//! on the process-global pool; that is safe precisely because of the
//! property under test.

use fexiot::store::{ArtifactKind, Store};
use fexiot::{build_federation, warm, FederationConfig};
use fexiot_fed::Strategy;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::Rng;
use std::collections::BTreeMap;
use std::path::PathBuf;

const WIDTHS: [usize; 3] = [1, 2, 7];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fexiot-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every (manifest key → blob bytes) pair the warm pipeline writes for one
/// (seed, graphs, encoder) configuration at the given pool width.
fn store_snapshot(width: usize, tag: &str) -> BTreeMap<String, Vec<u8>> {
    fexiot_par::set_threads(width);
    let dir = tmpdir(&format!("{tag}-w{width}"));
    let mut store = Store::open(&dir).unwrap();
    let model = warm::load_or_train_model(
        Some(&mut store),
        11,
        40,
        fexiot_gnn::EncoderKind::Gin,
    );
    assert!(!model.warm, "fresh store must build cold");
    let mut snap = BTreeMap::new();
    for entry in store.list() {
        let name = entry.name();
        let blob = dir.join("blobs").join(format!("{:016x}.bin", entry.blob));
        snap.insert(name, std::fs::read(&blob).unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);
    snap
}

#[test]
fn store_keys_and_blob_bytes_are_thread_width_invariant() {
    let saved = fexiot_par::pool().threads();
    let baseline = store_snapshot(WIDTHS[0], "inv");
    assert_eq!(baseline.len(), 2, "dataset + model entries");
    for &w in &WIDTHS[1..] {
        let snap = store_snapshot(w, "inv");
        assert_eq!(
            baseline.keys().collect::<Vec<_>>(),
            snap.keys().collect::<Vec<_>>(),
            "identity keys must not mention the pool width"
        );
        for (name, bytes) in &baseline {
            assert_eq!(
                bytes,
                &snap[name],
                "blob bytes for {name} differ between widths 1 and {w}"
            );
        }
    }
    fexiot_par::set_threads(saved);
}

#[test]
fn identity_keys_are_pure_configuration() {
    // No pool interaction at all: the same inputs give the same key, and
    // every discriminating field lands in it.
    let id = warm::dataset_identity(7, 120, false);
    assert_eq!(id.key(ArtifactKind::Dataset), warm::dataset_identity(7, 120, false).key(ArtifactKind::Dataset));
    let key = id.key(ArtifactKind::Dataset);
    assert!(key.contains("seed=7") && key.contains("scale=120") && key.contains("ifttt"));
    assert_ne!(key, warm::dataset_identity(7, 120, true).key(ArtifactKind::Dataset));
    let ck = warm::checkpoint_identity(7, 4, "FexIoT", 240);
    let ck_key = ck.key(ArtifactKind::Checkpoint);
    assert!(ck_key.contains("strategy=FexIoT") && ck_key.contains("graphs=240"));
    assert!(!ck_key.contains("rounds"), "rounds must not pin the identity");
}

#[test]
fn federate_checkpoint_roundtrips_bit_exactly_through_store() {
    let mut rng = Rng::seed_from_u64(5);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 40;
    let ds = generate_dataset(&cfg, &mut rng);

    let fed_cfg = FederationConfig {
        n_clients: 3,
        strategy: Strategy::fexiot_default(),
        rounds: 4,
        ..Default::default()
    };

    // Reference: an uninterrupted 4-round run.
    let mut straight = build_federation(&ds, &fed_cfg);
    for _ in 0..4 {
        straight.run_round();
    }
    let reference = straight.checkpoint();

    // Interrupted run: 2 rounds, checkpoint through the store, reopen the
    // store from disk (exercising manifest parse + hash verification on
    // read), restore into a fresh simulator, finish the remaining rounds.
    let dir = tmpdir("ck");
    let id = warm::checkpoint_identity(5, 3, "FexIoT", 40);
    {
        let mut sim = build_federation(&ds, &fed_cfg);
        sim.run_round();
        sim.run_round();
        let mut store = Store::open(&dir).unwrap();
        store.put_round(&id, 2, &sim.checkpoint()).unwrap();
    }
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.latest_round(&id), Some(2));
    let bytes = store.get_round(&id, 2).unwrap();
    let mut resumed = build_federation(&ds, &fed_cfg);
    resumed.restore(&bytes).unwrap();
    assert_eq!(resumed.rounds_completed(), 2);
    resumed.run_round();
    resumed.run_round();
    assert_eq!(
        resumed.checkpoint(),
        reference,
        "resume through the store must be bit-exact with the straight run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
