//! Width-invariance lock for the data-parallel execution layer: every stage
//! that runs on a [`fexiot_par::ParPool`] must produce **byte-identical**
//! results at 1, 2, and 7 threads. Chunk boundaries and per-chunk RNG streams
//! are pure functions of the *requested* width, and every gather preserves
//! submission order, so this holds by construction — these tests lock it.
//!
//! Stages with explicit-pool variants (`*_with`) are exercised on private
//! pools; federation and explanation route through the process-global pool,
//! so those tests sequence [`fexiot_par::set_threads`]. That global is shared
//! with any concurrently running test, which is safe precisely because of the
//! property under test: results never depend on the pool width.

use fexiot::{FexIot, FexIotConfig};
use fexiot_fed::{Client, FedConfig, FedSim, Strategy};
use fexiot_gnn::trainer::{embed_all_with, train_contrastive_with};
use fexiot_gnn::{binary_labels, ContrastiveConfig, Encoder, Gin};
use fexiot_graph::dataset::generate_dataset_with;
use fexiot_graph::{DatasetConfig, GraphDataset};
use fexiot_par::ParPool;
use fexiot_tensor::Rng;

const WIDTHS: [usize; 3] = [1, 2, 7];

fn small_dataset(pool: &ParPool, graphs: usize, seed: u64) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = graphs;
    generate_dataset_with(pool, &cfg, &mut rng)
}

/// Flattens a dataset to exactly comparable integers: per-node feature bits
/// plus the structural identity (rule ids) featurization must not disturb.
fn dataset_fingerprint(ds: &GraphDataset) -> Vec<u64> {
    let mut out = Vec::new();
    for g in &ds.graphs {
        out.push(g.node_count() as u64);
        for node in &g.nodes {
            out.push(node.rule.id as u64);
            out.extend(node.features.iter().map(|f| f.to_bits()));
        }
    }
    out
}

#[test]
fn featurize_is_width_invariant() {
    let reference = dataset_fingerprint(&small_dataset(&ParPool::new(1), 60, 42));
    for width in WIDTHS {
        let got = dataset_fingerprint(&small_dataset(&ParPool::new(width), 60, 42));
        assert_eq!(got, reference, "featurize diverged at width {width}");
    }
}

#[test]
fn embed_all_is_width_invariant() {
    let ds = small_dataset(&ParPool::new(1), 40, 7);
    let mut rng = Rng::seed_from_u64(7);
    let d = ds.graphs[0].nodes[0].features.len();
    let encoder = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
    let reference: Vec<u64> = embed_all_with(&ParPool::new(1), &encoder, &ds.graphs)
        .as_slice()
        .iter()
        .map(|f| f.to_bits())
        .collect();
    for width in WIDTHS {
        let got: Vec<u64> = embed_all_with(&ParPool::new(width), &encoder, &ds.graphs)
            .as_slice()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(got, reference, "embed_all diverged at width {width}");
    }
}

#[test]
fn contrastive_training_is_width_invariant() {
    let ds = small_dataset(&ParPool::new(1), 40, 11);
    let mut rng = Rng::seed_from_u64(11);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
    let labels = binary_labels(&ds);
    let cfg = ContrastiveConfig {
        epochs: 2,
        pairs_per_epoch: 16,
        ..Default::default()
    };

    // Compare the *trained parameters* via the embeddings they produce on a
    // fixed single-thread pool: bit-equal embeddings ⇒ bit-equal weights.
    let probe = ParPool::new(1);
    let fingerprint = |width: usize| -> (u64, Vec<u64>) {
        let mut enc = template.clone();
        let loss = train_contrastive_with(&ParPool::new(width), &mut enc, &ds.graphs, &labels, &cfg);
        let bits = embed_all_with(&probe, &enc, &ds.graphs)
            .as_slice()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        (loss.to_bits(), bits)
    };
    let reference = fingerprint(1);
    for width in WIDTHS {
        assert_eq!(
            fingerprint(width),
            reference,
            "contrastive training diverged at width {width}"
        );
    }
}

/// One round flattened to exactly comparable integers, mirroring the fed
/// golden lock: `(mean_loss bits, uploaded, downloaded, up msgs, down msgs)`.
type Row = (u64, usize, usize, usize, usize);

fn federated_rows(width: usize) -> Vec<Row> {
    fexiot_par::set_threads(width);
    let mut rng = Rng::seed_from_u64(42);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 40;
    let ds = generate_dataset_with(&ParPool::new(1), &cfg, &mut rng);
    let splits = ds.dirichlet_split(3, 1.0, &mut rng);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[10], 6, &mut rng);
    let clients = splits
        .into_iter()
        .enumerate()
        .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
        .collect();
    let config = FedConfig {
        strategy: Strategy::fexiot_default(),
        rounds: 2,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 8,
            ..Default::default()
        },
        seed: 42,
        ..Default::default()
    };
    FedSim::new(clients, config)
        .run()
        .into_iter()
        .map(|r| {
            (
                r.mean_loss.to_bits(),
                r.cumulative_comm.uploaded_bytes,
                r.cumulative_comm.downloaded_bytes,
                r.cumulative_comm.upload_messages,
                r.cumulative_comm.download_messages,
            )
        })
        .collect()
}

#[test]
fn federated_round_reports_are_width_invariant() {
    let saved = fexiot_par::pool().threads();
    let reference = federated_rows(1);
    for width in WIDTHS {
        assert_eq!(
            federated_rows(width),
            reference,
            "RoundReports diverged at width {width}"
        );
    }
    fexiot_par::set_threads(saved);
}

#[test]
fn explanation_is_width_invariant() {
    let saved = fexiot_par::pool().threads();
    let ds = small_dataset(&ParPool::new(1), 60, 42);
    let mut rng = Rng::seed_from_u64(42);
    let (train, test) = ds.train_test_split(0.8, &mut rng);
    let mut cfg = FexIotConfig::default().with_seed(42);
    cfg.hidden = vec![16];
    cfg.contrastive.epochs = 2;
    cfg.contrastive.pairs_per_epoch = 32;
    let model = FexIot::train(&train, cfg);
    let target = test
        .graphs
        .iter()
        .find(|g| g.node_count() >= 5)
        .expect("a non-trivial held-out graph");

    fexiot_par::set_threads(1);
    let reference = model.explain(target);
    for width in WIDTHS {
        fexiot_par::set_threads(width);
        let got = model.explain(target);
        assert_eq!(got.nodes, reference.nodes, "subgraph diverged at width {width}");
        assert_eq!(
            got.score.to_bits(),
            reference.score.to_bits(),
            "score diverged at width {width}"
        );
        assert_eq!(
            got.evaluations, reference.evaluations,
            "evaluation count diverged at width {width}"
        );
    }
    fexiot_par::set_threads(saved);
}
