//! Integration tests spanning the whole stack: corpus → graphs → training →
//! federated aggregation → drift filtering → explanation, plus the online
//! (event-log) path with attacks.

use fexiot::{build_federation_with_data, FederationConfig, FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config, quality};
use fexiot_fed::Strategy;
use fexiot_graph::attacks::{apply_attack, AttackKind};
use fexiot_graph::dataset::generate_federated;
use fexiot_graph::events::{clean_log, HomeSimulator, SimConfig};
use fexiot_graph::online::fuse_online;
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_ml::Metrics;
use fexiot_tensor::Rng;

fn dataset(seed: u64, n: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = n;
    generate_dataset(&cfg, &mut rng)
}

#[test]
fn centralized_pipeline_reaches_high_accuracy() {
    let mut rng = Rng::seed_from_u64(1);
    let ds = dataset(1, 300);
    let (train, test) = ds.train_test_split(0.8, &mut rng);
    let model = FexIot::train(&train, FexIotConfig::default().with_seed(1));
    let m = model.evaluate(&test);
    // Small-scale splits have ~15 positive test graphs, so accuracy swings a
    // few points across seeds; the paper-scale run (EXPERIMENTS.md) is higher.
    assert!(m.accuracy > 0.75, "centralized accuracy {}", m.accuracy);
    assert!(m.f1 > 0.55, "centralized f1 {}", m.f1);
}

#[test]
fn federated_training_beats_local_only() {
    let mut rng = Rng::seed_from_u64(2);
    let mut base = DatasetConfig::small_ifttt();
    base.graph_count = 240;
    let fed = generate_federated(&base, 8, 4, 1.0, &mut rng);

    let run = |strategy: Strategy| {
        let mut pipeline = FexIotConfig::default().with_seed(2);
        pipeline.contrastive.epochs = 1;
        pipeline.contrastive.pairs_per_epoch = 48;
        let config = FederationConfig {
            n_clients: fed.clients.len(),
            alpha: 1.0,
            strategy,
            rounds: 4,
            pipeline,
            ..Default::default()
        };
        let mut sim = build_federation_with_data(fed.clients.clone(), &config);
        sim.run();
        (
            Metrics::mean(&sim.evaluate(&fed.test)),
            sim.comm.total_bytes(),
        )
    };

    let (fexiot, fexiot_bytes) = run(Strategy::fexiot_default());
    let (local, local_bytes) = run(Strategy::LocalOnly);
    let (fedavg, fedavg_bytes) = run(Strategy::FedAvg);
    assert!(
        fexiot.accuracy > local.accuracy,
        "FexIoT {} should beat local-only {}",
        fexiot.accuracy,
        local.accuracy
    );
    assert_eq!(local_bytes, 0);
    assert!(fexiot_bytes > 0);
    assert!(
        fexiot_bytes < fedavg_bytes,
        "layer-wise sync must be cheaper than FedAvg"
    );
    let _ = fedavg;
}

#[test]
fn online_fusion_and_attacks_flow() {
    // Build a home, simulate, attack, fuse — every stage must compose.
    let mut rng = Rng::seed_from_u64(3);
    let ds = dataset(3, 40);
    let g = ds.graphs.iter().find(|g| g.node_count() >= 4).unwrap();
    let rules: Vec<_> = g.nodes.iter().map(|n| n.rule.clone()).collect();
    let mut sim = HomeSimulator::new(rules);
    let raw = sim.run(&SimConfig::short(), &mut rng);
    for kind in AttackKind::ALL {
        let attacked = apply_attack(kind, &raw, 0.3, &mut rng);
        let cleaned = clean_log(&attacked);
        let online = fuse_online(g, &cleaned);
        assert_eq!(online.node_count(), g.node_count());
        for node in &online.nodes {
            assert!(
                node.features.iter().all(|v| v.is_finite()),
                "{kind:?} produced NaN"
            );
        }
    }
}

#[test]
fn explanations_are_valid_subgraphs_with_quality() {
    let mut rng = Rng::seed_from_u64(4);
    let ds = dataset(4, 150);
    let (train, test) = ds.train_test_split(0.8, &mut rng);
    let model = FexIot::train(&train, FexIotConfig::default().with_seed(4));
    let mut explained = 0;
    for g in test.graphs.iter().filter(|g| g.node_count() >= 5).take(5) {
        let e = explain(model.scorer(), g, &fexiot_config(3, 3, 16));
        assert!(!e.nodes.is_empty());
        assert!(e.nodes.iter().all(|&i| i < g.node_count()));
        let q = quality(model.scorer(), g, &e.nodes);
        assert!(q.fidelity.is_finite());
        assert!((0.0..=1.0).contains(&q.sparsity));
        explained += 1;
    }
    assert!(explained >= 3, "too few explainable graphs in the split");
}

#[test]
fn drift_detector_flags_out_of_distribution_graphs() {
    // Train on IFTTT-style graphs; graphs from a *different archetype corpus*
    // with unusual structure should show higher drift scores on average.
    let _rng = Rng::seed_from_u64(5);
    let ds = dataset(5, 200);
    let model = FexIot::train(&ds, FexIotConfig::default().with_seed(5));
    let in_dist = dataset(6, 40);
    let flagged_in = model.filter_drifting(&in_dist).len();
    // In-distribution data should mostly pass the MAD filter.
    assert!(
        flagged_in < in_dist.len() / 2,
        "{} of {} in-distribution graphs flagged",
        flagged_in,
        in_dist.len()
    );
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut rng = Rng::seed_from_u64(7);
        let ds = dataset(7, 120);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(7));
        let m = model.evaluate(&test);
        (m.accuracy, m.f1)
    };
    assert_eq!(run(), run(), "pipeline must be reproducible from seeds");
}
