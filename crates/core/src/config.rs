//! Top-level configuration for the FexIoT pipeline.

use fexiot_gnn::{ContrastiveConfig, EncoderKind};
use fexiot_graph::FeatureConfig;
use fexiot_ml::DEFAULT_DRIFT_THRESHOLD;

/// End-to-end pipeline configuration with a builder API.
#[derive(Debug, Clone)]
pub struct FexIotConfig {
    /// Embedding dims for node features.
    pub features: FeatureConfig,
    /// Which GNN encoder backs the representation model.
    pub encoder: EncoderKind,
    /// GNN hidden widths.
    pub hidden: Vec<usize>,
    /// Graph-embedding dimensionality.
    pub embed_dim: usize,
    /// Contrastive-training schedule.
    pub contrastive: ContrastiveConfig,
    /// MAD drift threshold `T_M` (paper: 3).
    pub drift_threshold: f64,
    /// Explanation search: MCBS iterations.
    pub explain_iterations: usize,
    /// Explanation search: smallest subgraph size `N_min`.
    pub explain_min_nodes: usize,
    /// Kernel-SHAP samples per reward evaluation.
    pub shap_samples: usize,
    pub seed: u64,
}

impl Default for FexIotConfig {
    fn default() -> Self {
        Self {
            features: FeatureConfig::small(),
            encoder: EncoderKind::Gin,
            hidden: vec![32, 32],
            embed_dim: 16,
            contrastive: ContrastiveConfig {
                epochs: 10,
                pairs_per_epoch: 128,
                lr: 2e-3,
                ..Default::default()
            },
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            explain_iterations: 5,
            explain_min_nodes: 3,
            shap_samples: 32,
            seed: 0,
        }
    }
}

impl FexIotConfig {
    /// Paper-fidelity dims (300-d word / 512-d sentence embeddings, 3-layer GNN).
    pub fn paper() -> Self {
        Self {
            features: FeatureConfig::paper(),
            hidden: vec![64, 64, 64],
            embed_dim: 32,
            ..Default::default()
        }
    }

    pub fn with_encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.contrastive.seed = seed;
        self
    }

    pub fn with_features(mut self, features: FeatureConfig) -> Self {
        self.features = features;
        self
    }

    pub fn with_contrastive(mut self, contrastive: ContrastiveConfig) -> Self {
        self.contrastive = contrastive;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = FexIotConfig::default()
            .with_encoder(EncoderKind::Gcn)
            .with_seed(7);
        assert_eq!(cfg.encoder, EncoderKind::Gcn);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.contrastive.seed, 7);
    }

    #[test]
    fn paper_config_uses_paper_dims() {
        let cfg = FexIotConfig::paper();
        assert_eq!(cfg.features.word_dim, 300);
        assert_eq!(cfg.features.sentence_dim, 512);
        assert_eq!(cfg.hidden.len(), 3);
    }
}
