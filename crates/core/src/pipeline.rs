//! The end-to-end FexIoT pipeline for a single deployment: train the
//! contrastive GNN + linear head on labeled interaction graphs, filter
//! drifting samples with the MAD rule, detect vulnerable interactions, and
//! explain detections with the SHAP-guided beam search.

use crate::config::FexIotConfig;
use fexiot_explain::{explain, fexiot_config, Explanation, GraphScorer};
use fexiot_gnn::{
    head_features, head_features_all, train_contrastive, Encoder, EncoderKind, Gcn, Gin, Magnn,
};
use fexiot_graph::{FeatureConfig, GraphDataset, InteractionGraph, Platform};
use fexiot_ml::{DriftDetector, Metrics, SgdClassifier, SgdConfig};
use fexiot_tensor::rng::Rng;

/// Outcome of analyzing one interaction graph.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Model's vulnerability verdict.
    pub vulnerable: bool,
    /// P(vulnerable) from the linear head.
    pub score: f64,
    /// True if the sample lies outside the training distribution (paper
    /// §III-B3) and should be routed to manual inspection.
    pub drifting: bool,
}

/// A trained FexIoT instance.
pub struct FexIot {
    config: FexIotConfig,
    scorer: GraphScorer,
    drift: DriftDetector,
}

/// Builds an encoder of the configured kind for the given feature dims.
pub fn build_encoder(
    kind: &EncoderKind,
    features: FeatureConfig,
    hidden: &[usize],
    embed_dim: usize,
    rng: &mut Rng,
) -> Encoder {
    match kind {
        EncoderKind::Gcn => Encoder::Gcn(Gcn::new(
            features.node_dim(Platform::Ifttt),
            hidden,
            embed_dim,
            rng,
        )),
        EncoderKind::Gin => Encoder::Gin(Gin::new(
            features.node_dim(Platform::Ifttt),
            hidden,
            embed_dim,
            rng,
        )),
        EncoderKind::Magnn => {
            let h = hidden.first().copied().unwrap_or(32);
            Encoder::Magnn(Magnn::for_config(
                features,
                h,
                (h / 2).max(4),
                embed_dim,
                rng,
            ))
        }
    }
}

impl FexIot {
    /// Trains the full pipeline on a labeled dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(dataset: &GraphDataset, config: FexIotConfig) -> Self {
        assert!(!dataset.is_empty(), "fexiot: empty training dataset");
        let _span = fexiot_obs::span("train");
        let mut rng = Rng::seed_from_u64(config.seed);
        let labels: Vec<usize> = dataset
            .graphs
            .iter()
            .map(GraphDataset::binary_label)
            .collect();
        // Representations are trained on the fine-grained classes (benign +
        // six kinds + external); only the head is binary. This is what makes
        // Fig. 6's seven clusters separable in latent space.
        let classes: Vec<usize> = dataset.graphs.iter().map(GraphDataset::class_of).collect();

        let mut encoder = build_encoder(
            &config.encoder,
            config.features,
            &config.hidden,
            config.embed_dim,
            &mut rng,
        );
        // Boundary markers segment the live event stream into phases even
        // when a consumer tails it mid-span (span_close arrives much later).
        fexiot_obs::mark("train.contrastive");
        {
            let _s = fexiot_obs::span("train.contrastive");
            train_contrastive(&mut encoder, &dataset.graphs, &classes, &config.contrastive);
        }

        let x = head_features_all(&encoder, &dataset.graphs);
        let pos = labels.iter().filter(|&&l| l == 1).count();
        let neg = labels.len() - pos;
        let class_weights = if pos > 0 && neg > 0 {
            let total = labels.len() as f64;
            vec![total / (2.0 * neg as f64), total / (2.0 * pos as f64)]
        } else {
            Vec::new()
        };
        fexiot_obs::mark("train.head");
        let head = {
            let _s = fexiot_obs::span("train.head");
            SgdClassifier::fit(
                &x,
                &labels,
                SgdConfig {
                    class_weights,
                    seed: config.seed,
                    ..Default::default()
                },
            )
        };
        fexiot_obs::mark("train.drift");
        let drift = {
            let _s = fexiot_obs::span("train.drift");
            DriftDetector::fit(&x, &labels, config.drift_threshold)
        };
        Self {
            config,
            scorer: GraphScorer::new(encoder, head),
            drift,
        }
    }

    /// Analyzes one graph: drift check + vulnerability score.
    pub fn detect(&self, graph: &InteractionGraph) -> Detection {
        let features = head_features(&self.scorer.encoder, graph);
        let drifting = self.drift.is_drifting(&features);
        let score = self.scorer.head.proba(&features);
        Detection {
            vulnerable: score >= 0.5,
            score,
            drifting,
        }
    }

    /// Explains a (detected) vulnerable graph with the SHAP-guided MCBS.
    pub fn explain(&self, graph: &InteractionGraph) -> Explanation {
        let cfg = fexiot_config(
            self.config.explain_iterations,
            self.config.explain_min_nodes,
            self.config.shap_samples,
        );
        explain(&self.scorer, graph, &cfg)
    }

    /// Evaluates detection metrics on a labeled test set.
    pub fn evaluate(&self, test: &GraphDataset) -> Metrics {
        let preds: Vec<usize> = test
            .graphs
            .iter()
            .map(|g| usize::from(self.detect(g).vulnerable))
            .collect();
        let truth: Vec<usize> = test.graphs.iter().map(GraphDataset::binary_label).collect();
        Metrics::from_predictions(&preds, &truth)
    }

    /// Indices of drifting samples in a dataset (for manual inspection).
    pub fn filter_drifting(&self, dataset: &GraphDataset) -> Vec<usize> {
        dataset
            .graphs
            .iter()
            .enumerate()
            .filter(|(_, g)| self.detect(g).drifting)
            .map(|(i, _)| i)
            .collect()
    }

    /// Access to the underlying scorer (benchmarks and explanation studies).
    pub fn scorer(&self) -> &GraphScorer {
        &self.scorer
    }

    /// Serialized model size in bytes (Table III's "Model Size" column):
    /// encoder parameters plus the linear head, at f64 wire width.
    pub fn model_bytes(&self) -> usize {
        fexiot_tensor::optim::param_bytes(self.scorer.encoder.params())
            + (self.scorer.head.weights.len() + 1) * std::mem::size_of::<f64>()
    }

    /// Serializes the trained pipeline (encoder + head + drift detector +
    /// inference configuration) for on-device checkpointing.
    pub fn save_to_bytes(&self) -> Vec<u8> {
        let mut w = fexiot_tensor::codec::ByteWriter::new();
        w.write_u64(0xFE_10_07_F1_7E_00_00_01);
        let enc = fexiot_gnn::encoder_to_bytes(&self.scorer.encoder);
        w.write_usize(enc.len());
        for b in &enc {
            w.write_u8(*b);
        }
        let head = self.scorer.head.to_bytes();
        w.write_usize(head.len());
        for b in &head {
            w.write_u8(*b);
        }
        let drift = self.drift.to_bytes();
        w.write_usize(drift.len());
        for b in &drift {
            w.write_u8(*b);
        }
        w.write_usize(self.config.explain_iterations);
        w.write_usize(self.config.explain_min_nodes);
        w.write_usize(self.config.shap_samples);
        w.write_f64(self.config.drift_threshold);
        w.into_bytes()
    }

    /// Restores a pipeline saved by [`FexIot::save_to_bytes`]. Training
    /// hyperparameters are not persisted (the restored model is for
    /// inference and explanation).
    pub fn load_from_bytes(bytes: &[u8]) -> Result<Self, fexiot_tensor::codec::CodecError> {
        use fexiot_tensor::codec::{ByteReader, CodecError};
        let mut r = ByteReader::new(bytes);
        if r.read_u64()? != 0xFE_10_07_F1_7E_00_00_01 {
            return Err(CodecError::BadHeader);
        }
        let read_blob = |r: &mut ByteReader| -> Result<Vec<u8>, CodecError> {
            let len = r.read_usize()?;
            (0..len).map(|_| r.read_u8()).collect()
        };
        let enc = read_blob(&mut r)?;
        let head = read_blob(&mut r)?;
        let drift = read_blob(&mut r)?;
        let encoder = fexiot_gnn::encoder_from_bytes(&enc)?;
        let head = SgdClassifier::from_bytes(&head)?;
        let drift = DriftDetector::from_bytes(&drift)?;
        let config = FexIotConfig {
            explain_iterations: r.read_usize()?,
            explain_min_nodes: r.read_usize()?,
            shap_samples: r.read_usize()?,
            drift_threshold: r.read_f64()?,
            ..FexIotConfig::default()
        };
        Ok(Self {
            config,
            scorer: GraphScorer::new(encoder, head),
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::{generate_dataset, DatasetConfig};

    fn split_dataset(seed: u64) -> (GraphDataset, GraphDataset) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 100;
        let ds = generate_dataset(&cfg, &mut rng);
        ds.train_test_split(0.8, &mut rng)
    }

    #[test]
    fn end_to_end_beats_majority_class() {
        let (train, test) = split_dataset(1);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(1));
        let m = model.evaluate(&test);
        // Majority class is ~75% benign; the model must do meaningfully better
        // than random on the minority class too.
        assert!(m.accuracy > 0.6, "accuracy {}", m.accuracy);
        assert!(m.f1 > 0.2, "f1 {}", m.f1);
    }

    #[test]
    fn detection_has_probability_score() {
        let (train, test) = split_dataset(2);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(2));
        for g in &test.graphs[..5] {
            let d = model.detect(g);
            assert!((0.0..=1.0).contains(&d.score));
            assert_eq!(d.vulnerable, d.score >= 0.5);
        }
    }

    #[test]
    fn explanation_runs_on_test_graph() {
        let (train, test) = split_dataset(3);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(3));
        let g = test.graphs.iter().find(|g| g.node_count() >= 4).unwrap();
        let e = model.explain(g);
        assert!(!e.nodes.is_empty());
        assert!(e.nodes.len() <= g.node_count());
    }

    #[test]
    fn model_bytes_positive_and_stable() {
        let (train, _) = split_dataset(4);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(4));
        assert!(model.model_bytes() > 1000);
        assert_eq!(model.model_bytes(), model.model_bytes());
    }

    #[test]
    fn save_load_roundtrip_preserves_behavior() {
        let (train, test) = split_dataset(6);
        let model = FexIot::train(&train, FexIotConfig::default().with_seed(6));
        let bytes = model.save_to_bytes();
        let restored = FexIot::load_from_bytes(&bytes).expect("valid checkpoint");
        for g in &test.graphs {
            let a = model.detect(g);
            let b = restored.detect(g);
            assert_eq!(a.vulnerable, b.vulnerable);
            assert!((a.score - b.score).abs() < 1e-12);
            assert_eq!(a.drifting, b.drifting);
        }
        // Corruption is rejected, not panicked on.
        assert!(FexIot::load_from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(FexIot::load_from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn magnn_pipeline_trains_on_hetero_data() {
        let mut rng = Rng::seed_from_u64(5);
        let mut cfg = DatasetConfig::small_hetero();
        cfg.graph_count = 50;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let config = FexIotConfig::default()
            .with_encoder(EncoderKind::Magnn)
            .with_seed(5);
        let model = FexIot::train(&train, config);
        let m = model.evaluate(&test);
        assert!(m.accuracy > 0.4, "hetero accuracy {}", m.accuracy);
    }
}
