//! Convenience assembly of the federated simulation from a dataset: Dirichlet
//! split, per-client encoders, and the configured aggregation strategy.

use crate::config::FexIotConfig;
use crate::pipeline::build_encoder;
use fexiot_fed::{Client, FaultPlan, FedConfig, FedSim, Sampling, Strategy, Topology};
use fexiot_graph::GraphDataset;
use fexiot_tensor::rng::Rng;

/// Federation assembly parameters.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    pub n_clients: usize,
    /// Dirichlet concentration α (paper §IV-C: 0.1, 1, 2, 5, 10).
    pub alpha: f64,
    pub strategy: Strategy,
    pub rounds: usize,
    pub pipeline: FexIotConfig,
    /// §VI extension: differential privacy on client updates.
    pub dp: Option<fexiot_fed::DpConfig>,
    /// §VI extension: pairwise-masked secure aggregation.
    pub secure_aggregation: bool,
    /// §VI extension: FoolsGold-style Sybil down-weighting.
    pub sybil_defense: bool,
    /// FexIoT layer sync cadence (ablation knob; see `FedConfig`).
    pub layer_cadence: bool,
    /// Fault injection: dropout, crashes, stragglers, lossy links,
    /// corrupted updates (`FaultPlan::none()` = reliable fleet).
    pub faults: FaultPlan,
    /// Fleet-scale per-round client sampling (`Sampling::Full` = everyone).
    pub sampling: Sampling,
    /// Aggregation topology: flat, or hierarchical edge aggregators.
    pub topology: Topology,
    /// Quorum fraction of sampled weight required to commit a round.
    pub quorum: f64,
    /// Round deadline in simulated ticks (`None` = wait for everyone).
    pub deadline_ticks: Option<usize>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            n_clients: 10,
            alpha: 1.0,
            strategy: Strategy::fexiot_default(),
            rounds: 10,
            pipeline: FexIotConfig::default(),
            dp: None,
            secure_aggregation: false,
            sybil_defense: false,
            layer_cadence: true,
            faults: FaultPlan::none(),
            sampling: Sampling::Full,
            topology: Topology::flat(),
            quorum: 0.0,
            deadline_ticks: None,
        }
    }
}

/// Splits `train` across clients non-i.i.d. and builds the simulator. All
/// clients start from the same initial encoder (standard FL initialization).
pub fn build_federation(train: &GraphDataset, config: &FederationConfig) -> FedSim {
    assert!(config.n_clients > 0, "federation: zero clients");
    let mut rng = Rng::seed_from_u64(config.pipeline.seed);
    let splits = train.dirichlet_split(config.n_clients, config.alpha, &mut rng);
    build_federation_with_data(splits, config)
}

/// Builds the simulator from pre-assembled per-client datasets (e.g. the
/// archetype-based heterogeneous split of
/// [`fexiot_graph::dataset::generate_federated`]).
pub fn build_federation_with_data(
    client_data: Vec<GraphDataset>,
    config: &FederationConfig,
) -> FedSim {
    assert!(!client_data.is_empty(), "federation: no client data");
    let mut rng = Rng::seed_from_u64(config.pipeline.seed);
    let template = build_encoder(
        &config.pipeline.encoder,
        config.pipeline.features,
        &config.pipeline.hidden,
        config.pipeline.embed_dim,
        &mut rng,
    );
    let clients: Vec<Client> = client_data
        .into_iter()
        .enumerate()
        .map(|(i, data)| Client::new(i, template.clone(), data))
        .collect();
    let fed_config = FedConfig {
        strategy: config.strategy.clone(),
        rounds: config.rounds,
        local: config.pipeline.contrastive.clone(),
        dp: config.dp,
        secure_aggregation: config.secure_aggregation,
        sybil_defense: config.sybil_defense,
        layer_cadence: config.layer_cadence,
        faults: config.faults.clone(),
        seed: config.pipeline.seed,
        sampling: config.sampling,
        topology: config.topology,
        quorum: config.quorum,
        deadline_ticks: config.deadline_ticks,
    };
    FedSim::new(clients, fed_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::{generate_dataset, DatasetConfig};
    use fexiot_ml::Metrics;

    #[test]
    fn federation_trains_and_evaluates() {
        let mut rng = Rng::seed_from_u64(1);
        let mut ds_cfg = DatasetConfig::small_ifttt();
        ds_cfg.graph_count = 80;
        let ds = generate_dataset(&ds_cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let mut config = FederationConfig {
            n_clients: 4,
            rounds: 2,
            ..Default::default()
        };
        config.pipeline.contrastive.epochs = 1;
        config.pipeline.contrastive.pairs_per_epoch = 12;
        let mut sim = build_federation(&train, &config);
        sim.run();
        let metrics = sim.evaluate(&test);
        assert_eq!(metrics.len(), 4);
        let mean = Metrics::mean(&metrics);
        assert!(mean.accuracy > 0.3);
    }

    #[test]
    fn all_graphs_distributed() {
        let mut rng = Rng::seed_from_u64(2);
        let mut ds_cfg = DatasetConfig::small_ifttt();
        ds_cfg.graph_count = 60;
        let ds = generate_dataset(&ds_cfg, &mut rng);
        let config = FederationConfig {
            n_clients: 5,
            ..Default::default()
        };
        let sim = build_federation(&ds, &config);
        let total: usize = sim.clients.iter().map(|c| c.sample_count()).sum();
        assert_eq!(total, ds.len());
    }
}
