//! `fexiot-cli` — drive the FexIoT pipeline from the command line.
//!
//! ```text
//! fexiot-cli train    [--graphs N] [--seed S] [--encoder gin|gcn|magnn]
//!                     [--out MODEL] [--store DIR]    # at least one sink
//! fexiot-cli eval     (--model MODEL | --store DIR) [--graphs N] [--seed S]
//!                     [--train-graphs N] [--train-seed S] [--encoder E]
//! fexiot-cli detect   (--model MODEL | --store DIR) [--seed S]  # one fresh home
//! fexiot-cli explain  (--model MODEL | --store DIR) [--seed S]  # one detection
//! fexiot-cli federate [--clients N] [--rounds R] [--strategy fexiot|fedavg|fmtl|gcfl|local]
//!                     [--dropout P] [--msg-loss P] [--straggler P] [--corrupt P]
//!                     [--sample-frac F | --sample-k K]      # per-round cohort sampling
//!                     [--aggregators N] [--failover reassign|skip]
//!                     [--agg-dropout P] [--agg-crash P] [--agg-straggler P]
//!                     [--quorum F] [--deadline-ticks T]     # quorum-gated rounds
//!                     [--store DIR | --checkpoint-dir DIR]  # checkpoint + resume
//! fexiot-cli serve    [--replay | --input FILE] [--model MODEL | --store DIR]
//!                     [--homes N] [--home-size K] [--seed S] [--sim-scale M]
//!                     [--shards N] [--mailbox-cap C] [--overflow block|shed]
//!                     [--ingest-rate R] [--maintain-rate R] [--detect-rate R]
//!                     [--round-events E] [--slow-shard I] [--record FILE]
//! fexiot-cli store list --store DIR                  # inspect cached artifacts
//! fexiot-cli store gc   --store DIR                  # drop broken entries / orphan blobs
//! ```
//!
//! `--store DIR` opens the persistent artifact store (`fexiot-store`): a
//! content-addressed blob directory under a versioned manifest, keyed by
//! configuration identity (seed, scale, encoder, feature dims, schema
//! version — never thread width). A warm run loads its dataset and model
//! from the store and skips corpus generation, featurization, and training
//! entirely; stdout is byte-identical to the cold run because every warm
//! note goes to stderr and skipped stages consume no shared RNG. `eval`,
//! `detect`, and `explain` resolve their model from the registry (training
//! on demand on a miss, keyed by `--train-seed`/`--train-graphs`/
//! `--encoder`); `serve` hot-loads only and fails cleanly when the model
//! is absent. `federate --store DIR` persists per-round checkpoints under
//! the same manifest and resumes from the latest round for its identity
//! (`--checkpoint-dir` is kept as an alias). Corrupt blobs are detected by
//! hash verification, reported on stderr naming the artifact, and rebuilt
//! cold. See DESIGN.md §Artifact store.
//!
//! `serve` runs the streaming detection service (`fexiot-stream`): a seeded
//! replay fleet (or a recorded `fexiot-obs-events/v1` wire file via
//! `--input`) streams per-home events through the bounded-mailbox actor
//! pipeline — incremental graph maintenance, then detection shards fanned
//! out over the thread pool. `--model` plugs the trained detector in
//! (default: the lightweight runtime-feature detector); `--record` writes
//! the replayed stream to a wire file; `--slow-shard` injects a slow
//! detection shard to exercise backpressure and the streaming SLO gate.
//!
//! Every subcommand accepts `--threads N` to pin the deterministic parallel
//! execution width (default: `FEXIOT_THREADS`, else the machine's available
//! parallelism; results are bit-identical at any width — see DESIGN.md
//! §Execution model), plus the shared observability flags (parsed by
//! [`fexiot_obs::cli::ObsCli`]): `--obs-summary` (print the span tree and
//! metric digests after the run), `--obs-out DIR` (write a `fexiot-obs/v4`
//! JSON run report under DIR), `--obs-stream FILE` (stream
//! `fexiot-obs-events/v1` JSONL events live to FILE;
//! `--obs-stream-timing exclude` drops wall-clock fields so same-seed
//! streams are byte-identical), `--obs-flame FILE` (write
//! flamegraph-compatible collapsed stacks, value = exclusive µs per span
//! path), `--obs-timeseries [CAP]` (collect the per-round fleet time-series
//! into the report's `timeseries` section), `--obs-slo FILE` (evaluate
//! the SLO rules in FILE each round; a failing rule prints its verdict and
//! exits with code 3), and `--obs-trace FILE` (record the federated run's
//! causal fault graph — `fexiot-obs-causal/v1` — for
//! `obs-export --chrome-trace` and root-cause attribution;
//! `--obs-trace-timing exclude` drops wall-clock fields so same-seed traces
//! are byte-identical); see DESIGN.md §Observability.
//!
//! Datasets are generated from the synthetic corpus (see DESIGN.md); models
//! are checkpointed with the first-party codec, so `train` on one machine and
//! `eval`/`explain` on another reproduce identical decisions.

use fexiot::fed::{Corruption, Failover, FaultPlan, Sampling, Strategy, Topology};
use fexiot::store::{ArtifactKind, Store, StoreError};
use fexiot::{build_federation, warm, FederationConfig, FexIot, FexIotConfig};
use fexiot_gnn::EncoderKind;
use fexiot_graph::GraphDataset;
use fexiot_ml::Metrics;
use fexiot_tensor::codec::fnv1a;
use fexiot_tensor::Rng;
use std::process::ExitCode;

struct Args {
    values: Vec<(String, String)>,
    command: String,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut argv = std::env::args().skip(1);
        let mut command = argv.next()?;
        let mut rest: Vec<String> = argv.collect();
        // `store` takes an action word (`store list`, `store gc`) — the one
        // place a positional is meaningful. Fold it into the command so the
        // flag parser below stays positional-free.
        if command == "store" {
            if let Some(action) = rest.first().filter(|a| !a.starts_with("--")) {
                command = format!("store {action}");
                rest.remove(0);
            }
        }
        Self::parse_from(command, rest)
    }

    /// Parses a flag list (everything after the subcommand). Split out from
    /// [`Args::parse`] so tests can drive the parser without a process.
    fn parse_from(command: String, mut argv: Vec<String>) -> Option<Args> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = std::mem::take(&mut argv[i]);
            if let Some(name) = key.strip_prefix("--") {
                // A following `--token` (or nothing) means this flag is
                // boolean, e.g. `--obs-summary`.
                match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(value) => {
                        values.push((name.to_string(), value.clone()));
                        i += 2;
                    }
                    None => {
                        values.push((name.to_string(), String::new()));
                        i += 1;
                    }
                }
            } else {
                eprintln!("unexpected argument: {key}");
                return None;
            }
        }
        Some(Args { values, command })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fexiot-cli train    [--graphs N] [--seed S] [--encoder gin|gcn|magnn] [--out MODEL] [--store DIR]\n  fexiot-cli eval     (--model MODEL | --store DIR) [--graphs N] [--seed S]\n                      [--train-graphs N] [--train-seed S] [--encoder E]  (registry identity)\n  fexiot-cli detect   (--model MODEL | --store DIR) [--seed S]\n  fexiot-cli explain  (--model MODEL | --store DIR) [--seed S]\n  fexiot-cli federate [--clients N] [--rounds R] [--strategy fexiot|fedavg|fmtl|gcfl|local]\n                      [--graphs N] [--seed S] [--alpha A]\n                      [--dropout P] [--msg-loss P] [--straggler P] [--corrupt P]\n                      [--sample-frac F | --sample-k K]  (per-round cohort sampling)\n                      [--aggregators N] [--failover reassign|skip]\n                      [--agg-dropout P] [--agg-crash P] [--agg-straggler P]\n                      [--quorum F] [--deadline-ticks T]  (quorum-gated rounds)\n                      [--store DIR | --checkpoint-dir DIR]  (checkpoints; resumes from the latest round)\n  fexiot-cli serve    [--replay | --input FILE] [--model MODEL | --store DIR]  (streaming detection)\n                      [--homes N] [--home-size K] [--seed S] [--sim-scale M]\n                      [--shards N] [--mailbox-cap C] [--overflow block|shed]\n                      [--ingest-rate R] [--maintain-rate R] [--detect-rate R]\n                      [--round-events E] [--slow-shard I] [--record FILE]\n  fexiot-cli store list --store DIR  (list cached artifacts)\n  fexiot-cli store gc   --store DIR  (drop broken entries and orphan blobs)\n  any subcommand: [--threads N]  (parallel width; default FEXIOT_THREADS or all cores)\n                  [--store DIR]  (artifact store: warm-start datasets/models; see DESIGN.md)\n                  [--obs-summary] [--obs-out DIR] [--obs-flame FILE]\n                  [--obs-stream FILE] [--obs-stream-timing include|exclude]\n                  [--obs-trace FILE] [--obs-trace-timing include|exclude]  (observability export)"
    );
    ExitCode::from(2)
}

/// Store-aware dataset builder: warm-loads the featurized graphs from the
/// artifact store when possible, generates (and caches) them otherwise.
/// Warm notes go to stderr only — stdout stays byte-identical either way.
fn make_dataset(
    args: &Args,
    default_graphs: usize,
    hetero: bool,
    store: &mut Option<Store>,
) -> GraphDataset {
    let out = warm::load_or_generate_dataset(
        store.as_mut(),
        args.get_u64("seed", 42),
        args.get_usize("graphs", default_graphs),
        hetero,
    );
    for note in &out.notes {
        eprintln!("{note}");
    }
    out.value
}

fn load_model(args: &Args) -> Result<FexIot, String> {
    let path = args.get("model").ok_or("--model is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FexIot::load_from_bytes(&bytes).map_err(|e| format!("corrupt model {path}: {e}"))
}

/// Opens the artifact store named by `--store DIR` (None without the flag).
fn open_store(args: &Args) -> Result<Option<Store>, String> {
    let Some(dir) = args.get("store") else {
        return Ok(None);
    };
    if dir.is_empty() {
        return Err("--store wants a directory".into());
    }
    let store = Store::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    if let Some(note) = &store.recovered {
        eprintln!("store: {note}");
    }
    Ok(Some(store))
}

/// Model resolution shared by eval/detect/explain/serve: an explicit
/// `--model PATH` always wins; otherwise the `--store` registry supplies
/// the model keyed by (`--train-seed`, `--train-graphs`, `--encoder`).
/// `train_if_missing` distinguishes the analysis arms (train on demand,
/// then cache) from `serve` (hot-load only — a serving process must never
/// silently absorb a training run).
fn resolve_model(
    args: &Args,
    store: &mut Option<Store>,
    train_if_missing: bool,
    default_encoder: &str,
) -> Result<FexIot, String> {
    if args.get("model").is_some() {
        return load_model(args);
    }
    let Some(store) = store.as_mut() else {
        return Err("--model MODEL or --store DIR is required".into());
    };
    let encoder_name = args.get("encoder").unwrap_or(default_encoder);
    let encoder =
        warm::parse_encoder(encoder_name).ok_or_else(|| format!("unknown encoder {encoder_name}"))?;
    let train_seed = args.get_u64("train-seed", args.get_u64("seed", 42));
    let train_graphs = args.get_usize("train-graphs", 300);
    if train_if_missing {
        let out = warm::load_or_train_model(Some(store), train_seed, train_graphs, encoder);
        for note in &out.notes {
            eprintln!("{note}");
        }
        return Ok(out.value);
    }
    let id = warm::model_identity(train_seed, train_graphs, encoder);
    let bytes = store.get(ArtifactKind::Model, &id).map_err(|e| {
        format!(
            "{e}; serve hot-loads only — train it first with \
             `fexiot-cli train --store DIR` using matching \
             --seed/--graphs/--encoder"
        )
    })?;
    eprintln!("store: hot-loaded model {}", id.key(ArtifactKind::Model));
    FexIot::load_from_bytes(&bytes).map_err(|e| format!("corrupt model in store: {e}"))
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        return usage();
    };
    // `--threads N` pins the data-parallel width before any stage runs;
    // without it the pool resolves FEXIOT_THREADS / available parallelism.
    match args.get("threads").map(str::parse::<usize>) {
        None => {}
        Some(Ok(t)) if t > 0 => fexiot_par::set_threads(t),
        Some(_) => {
            eprintln!("--threads expects a positive integer");
            return usage();
        }
    }
    // The shared helper owns the `--obs-*` namespace: known-flag validation,
    // stream/report/flame lifecycle (see fexiot_obs::cli).
    let obs = match fexiot_obs::ObsCli::from_pairs(&args.values) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let run_name = format!("cli-{}", args.command);
    if let Err(e) = obs.begin(&run_name) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }

    // Fleet-health telemetry (`--obs-timeseries` / `--obs-slo`): built here,
    // carried by the federate run, and handed back for export + the SLO
    // exit-code gate below.
    let mut telemetry = match obs.fleet_telemetry() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Federate fills this with its per-round critical path so the summary
    // and the exported report carry the straggler/backoff attribution.
    let mut critical_path: Option<Vec<fexiot_obs::CriticalPathEntry>> = None;
    // With `--obs-trace`, federate records its causal fault graph and hands
    // it back here for export (and for the report's root_cause section).
    let trace_run = obs.trace.is_some().then(|| run_name.clone());
    let mut trace: Option<fexiot_obs::CausalGraph> = None;
    // Serve fills this with its run summary for the report's `stream` section.
    let mut stream_section: Option<fexiot_obs::Json> = None;
    let code = run(
        &args,
        trace_run.as_deref(),
        &mut critical_path,
        &mut telemetry,
        &mut trace,
        &mut stream_section,
    );

    if let Err(e) = obs.finish_serve(
        &run_name,
        critical_path.as_deref(),
        telemetry.as_ref(),
        trace.as_ref(),
        stream_section,
    ) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    // A failed SLO rule is a run verdict: report it on stderr and exit
    // nonzero (distinct from the generic FAILURE code so CI can tell an SLO
    // breach from an infrastructure error). The federate arm only hands
    // telemetry back after a successful run, so this never masks a failure
    // code from `run`.
    if telemetry.as_ref().is_some_and(|t| t.slo_failed()) {
        eprintln!("SLO gate failed (see verdict lines above)");
        return ExitCode::from(3);
    }
    code
}

fn run(
    args: &Args,
    trace_run: Option<&str>,
    critical_path: &mut Option<Vec<fexiot_obs::CriticalPathEntry>>,
    telemetry: &mut Option<fexiot_obs::FleetTelemetry>,
    trace: &mut Option<fexiot_obs::CausalGraph>,
    stream_section: &mut Option<fexiot_obs::Json>,
) -> ExitCode {
    let mut store = match open_store(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match args.command.as_str() {
        "train" => {
            let out_path = args.get("out");
            if out_path.is_none() && store.is_none() {
                eprintln!("train: --out MODEL or --store DIR is required");
                return usage();
            }
            let encoder_name = args.get("encoder").unwrap_or("gin");
            let Some(encoder) = warm::parse_encoder(encoder_name) else {
                eprintln!("unknown encoder {encoder_name}");
                return usage();
            };
            let seed = args.get_u64("seed", 42);
            let graphs = args.get_usize("graphs", 300);
            let hetero = encoder == EncoderKind::Magnn;
            let ds = make_dataset(args, 300, hetero, &mut store);
            let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
            let (train, test) = ds.train_test_split(0.8, &mut rng);
            println!(
                "training on {} graphs ({} vulnerable), holding out {}",
                train.len(),
                train.vulnerable_count(),
                test.len()
            );
            // Registry warm path: a model already cached under this exact
            // identity skips training; the held-out line below is computed
            // from the loaded model on the same deterministic split, so the
            // warm run's stdout is bit-identical to the cold run's.
            let id = warm::model_identity(seed, graphs, encoder.clone());
            let mut model = None;
            if let Some(s) = store.as_ref() {
                match s.get(ArtifactKind::Model, &id) {
                    Ok(bytes) => match FexIot::load_from_bytes(&bytes) {
                        Ok(m) => {
                            eprintln!("store: warm model hit; skipping training");
                            model = Some(m);
                        }
                        Err(e) => {
                            eprintln!("store: corrupt model payload ({e}); retraining cold")
                        }
                    },
                    Err(StoreError::Missing { .. }) => {}
                    Err(e) => eprintln!("{e}; retraining cold"),
                }
            }
            let model = match model {
                Some(m) => m,
                None => {
                    let cfg = FexIotConfig::default()
                        .with_encoder(encoder)
                        .with_seed(seed);
                    let m = FexIot::train(&train, cfg);
                    if let Some(s) = store.as_mut() {
                        if let Err(e) = s.put(ArtifactKind::Model, &id, &m.save_to_bytes()) {
                            eprintln!("store: cannot cache model: {e}");
                        }
                    }
                    m
                }
            };
            println!("held-out: {}", model.evaluate(&test));
            let bytes = model.save_to_bytes();
            if let Some(out) = out_path {
                if let Err(e) = std::fs::write(out, &bytes) {
                    eprintln!("cannot write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("saved {} KB to {out}", bytes.len() / 1024);
            }
            ExitCode::SUCCESS
        }
        "eval" => {
            let model = match resolve_model(args, &mut store, true, "gin") {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = make_dataset(args, 120, false, &mut store);
            // The report is accumulated and digested so warm/cold identity
            // is checkable from the last stdout line alone.
            let mut report = String::new();
            report.push_str(&format!("evaluating on {} fresh graphs\n", ds.len()));
            report.push_str(&format!("{}\n", model.evaluate(&ds)));
            let drifting = model.filter_drifting(&ds);
            report.push_str(&format!(
                "drift filter flagged {}/{} graphs\n",
                drifting.len(),
                ds.len()
            ));
            print!("{report}");
            println!("report digest fnv1a:{:016x}", fnv1a(report.as_bytes()));
            ExitCode::SUCCESS
        }
        "detect" => {
            let model = match resolve_model(args, &mut store, true, "gin") {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = make_dataset(args, 20, false, &mut store);
            let mut report = String::new();
            for (i, g) in ds.graphs.iter().enumerate() {
                let d = model.detect(g);
                report.push_str(&format!(
                    "graph {i:>2} ({} rules): {}  p={:.3}{}\n",
                    g.node_count(),
                    if d.vulnerable {
                        "VULNERABLE"
                    } else {
                        "benign    "
                    },
                    d.score,
                    if d.drifting {
                        "  [drifting - inspect manually]"
                    } else {
                        ""
                    }
                ));
            }
            print!("{report}");
            println!("detections digest fnv1a:{:016x}", fnv1a(report.as_bytes()));
            ExitCode::SUCCESS
        }
        "explain" => {
            let model = match resolve_model(args, &mut store, true, "gin") {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = make_dataset(args, 60, false, &mut store);
            let Some(target) = ds
                .graphs
                .iter()
                .find(|g| g.node_count() >= 4 && model.detect(g).vulnerable)
            else {
                println!("no vulnerable detection in the generated sample; try another --seed");
                return ExitCode::SUCCESS;
            };
            let e = model.explain(target);
            println!(
                "explaining a {}-rule home; root-cause subgraph ({} rules, score {:.3}):",
                target.node_count(),
                e.nodes.len(),
                e.score
            );
            for &i in &e.nodes {
                println!(
                    "  rule {:>4}: {}",
                    target.nodes[i].rule.id, target.nodes[i].rule.text
                );
            }
            ExitCode::SUCCESS
        }
        "federate" => {
            let strategy = match args.get("strategy").unwrap_or("fexiot") {
                "fexiot" => Strategy::fexiot_default(),
                "fedavg" => Strategy::FedAvg,
                "fmtl" => Strategy::fmtl_default(),
                "gcfl" => Strategy::gcfl_default(),
                "local" => Strategy::LocalOnly,
                other => {
                    eprintln!("unknown strategy {other}");
                    return usage();
                }
            };
            let seed = args.get_u64("seed", 42);
            let rounds = args.get_usize("rounds", 10);
            let mut config = FederationConfig {
                n_clients: args.get_usize("clients", 8),
                alpha: args.get_f64("alpha", 1.0),
                strategy,
                rounds,
                ..Default::default()
            };
            config.pipeline.seed = seed;
            config.faults = FaultPlan::none()
                .with_seed(seed)
                .with_dropout(args.get_f64("dropout", 0.0))
                .with_msg_loss(args.get_f64("msg-loss", 0.0))
                .with_straggler(args.get_f64("straggler", 0.0))
                .with_corruption(args.get_f64("corrupt", 0.0), Corruption::NonFinite)
                .with_agg_dropout(args.get_f64("agg-dropout", 0.0))
                .with_agg_crash(args.get_f64("agg-crash", 0.0), 2)
                .with_agg_straggler(args.get_f64("agg-straggler", 0.0));
            config.sampling = if let Some(k) = args.get("sample-k") {
                match k.parse() {
                    Ok(k) => Sampling::FixedK(k),
                    Err(_) => {
                        eprintln!("--sample-k wants a client count");
                        return usage();
                    }
                }
            } else if let Some(f) = args.get("sample-frac") {
                match f.parse() {
                    Ok(f) => Sampling::Fraction(f),
                    Err(_) => {
                        eprintln!("--sample-frac wants a fraction in (0, 1]");
                        return usage();
                    }
                }
            } else {
                Sampling::Full
            };
            let failover = match args.get("failover").unwrap_or("reassign") {
                "reassign" => Failover::Reassign,
                "skip" => Failover::Skip,
                other => {
                    eprintln!("unknown failover policy {other}");
                    return usage();
                }
            };
            config.topology = Topology {
                aggregators: args.get_usize("aggregators", 1).max(1),
                failover,
            };
            config.quorum = args.get_f64("quorum", 0.0);
            config.deadline_ticks = args
                .get("deadline-ticks")
                .and_then(|v| v.parse().ok())
                .filter(|&t: &usize| t > 0);

            // `--checkpoint-dir DIR` is a compatibility alias for
            // `--store DIR`: both open the same manifest-backed store.
            if store.is_none() {
                if let Some(dir) = args.get("checkpoint-dir") {
                    match Store::open(std::path::Path::new(dir)) {
                        Ok(s) => {
                            if let Some(note) = &s.recovered {
                                eprintln!("store: {note}");
                            }
                            store = Some(s);
                        }
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let graph_count = args.get_usize("graphs", 240);
            let ds = make_dataset(args, 240, false, &mut store);
            let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
            let (train, test) = ds.train_test_split(0.8, &mut rng);
            println!(
                "federating {} clients over {} graphs ({}), strategy {}, {} aggregator(s)",
                config.n_clients,
                train.len(),
                if config.faults.is_active() {
                    "faults on"
                } else {
                    "reliable fleet"
                },
                config.strategy.name(),
                config.topology.aggregators,
            );
            let mut sim = build_federation(&train, &config);
            // Point the simulator's private registry at the global one so
            // the exported report covers pipeline + rounds in one tree.
            if fexiot_obs::global_enabled() {
                sim.attach_obs(std::sync::Arc::clone(fexiot_obs::global()));
            }
            // Hand the telemetry bundle to the simulator for the run; it is
            // taken back below so main can export it and gate the exit code.
            if let Some(t) = telemetry.take() {
                sim.attach_telemetry(t);
            }
            if let Some(name) = trace_run {
                sim.enable_causal_trace(name);
            }

            // With a store open, each round is persisted under the run's
            // checkpoint identity (seed, fleet size, strategy, graphs —
            // rounds excluded), and a rerun with the same flags resumes from
            // the latest round recorded there. A rerun asking for *more*
            // rounds therefore continues instead of starting over, and a
            // corrupt checkpoint degrades to a cold start with a warning.
            let ck_id = warm::checkpoint_identity(
                seed,
                config.n_clients,
                config.strategy.name(),
                graph_count,
            );
            if let Some(s) = store.as_mut() {
                if let Some(round) = s.latest_round(&ck_id) {
                    match s
                        .get_round(&ck_id, round)
                        .map_err(|e| e.to_string())
                        .and_then(|b| sim.restore(&b).map_err(|e| e.to_string()))
                    {
                        Ok(()) => println!(
                            "resumed from store at round {}",
                            sim.rounds_completed()
                        ),
                        Err(e) => eprintln!(
                            "cannot resume from checkpoint round {round}: {e}; starting cold"
                        ),
                    }
                }
            }

            while sim.rounds_completed() < rounds {
                let r = sim.run_round();
                let t = r.faults;
                println!(
                    "round {:>3}: loss {:.4}  comm {:>8.2} MB  active {}/{} (dropped {}, quarantined {}, stale {}, retries {}, lost {}){}{}{}",
                    r.round,
                    r.mean_loss,
                    r.cumulative_comm.total_mb(),
                    t.participants,
                    t.sampled,
                    t.dropped,
                    t.quarantined,
                    t.stale_accepted,
                    t.retried_messages,
                    t.lost_messages,
                    if t.agg_down > 0 {
                        format!("  [{} aggregator(s) down, {} rerouted]", t.agg_down, t.reassigned)
                    } else {
                        String::new()
                    },
                    if t.quorum_aborted { "  [QUORUM ABORT]" } else { "" },
                    if t.slo_failures > 0 {
                        // With causal tracing on, name the dominant cause in
                        // the annotation so a scrolling log already points at
                        // the culprit (the full ranking lands in the report's
                        // `root_cause` section).
                        match sim.last_root_cause() {
                            Some(cause) => format!(
                                "  [SLO {} failing: top cause {}]",
                                t.slo_failures, cause
                            ),
                            None => format!("  [SLO {} failing]", t.slo_failures),
                        }
                    } else {
                        String::new()
                    },
                );
                if let Some(e) = &r.comm_error {
                    eprintln!("round {:>3}: COMM INVARIANT VIOLATED: {e}", r.round);
                }
                if let Some(s) = store.as_mut() {
                    if let Err(e) = s.put_round(&ck_id, r.round as u64, &sim.checkpoint()) {
                        eprintln!("cannot write checkpoint for round {}: {e}", r.round);
                        return ExitCode::FAILURE;
                    }
                }
            }
            let metrics = sim.evaluate(&test);
            println!("held-out (mean over clients): {}", Metrics::mean(&metrics));
            *critical_path = Some(sim.critical_path());
            *telemetry = sim.take_telemetry();
            *trace = sim.take_causal_trace();
            ExitCode::SUCCESS
        }
        "serve" => serve(args, &mut store, critical_path, telemetry, stream_section),
        "store list" => {
            let Some(s) = store.as_ref() else {
                eprintln!("store list: --store DIR is required");
                return usage();
            };
            let entries = s.list();
            for e in &entries {
                println!(
                    "{:<12} {:>10} B  blob {:016x}  {}",
                    e.kind.as_str(),
                    e.len,
                    e.blob,
                    e.name()
                );
            }
            println!("{} artifact(s)", entries.len());
            ExitCode::SUCCESS
        }
        "store gc" => {
            let Some(s) = store.as_mut() else {
                eprintln!("store gc: --store DIR is required");
                return usage();
            };
            match s.gc() {
                Ok((dropped, deleted)) => {
                    println!(
                        "store gc: dropped {dropped} broken entr{}, deleted {deleted} orphan blob(s)",
                        if dropped == 1 { "y" } else { "ies" }
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// A trained encoder only consumes graphs in its input feature space: GIN
/// and GCN need one homogeneous node dim, MAGNN one registered projection
/// per platform. The replay fleet spans all five platforms, so check every
/// home up front and fail cleanly instead of panicking mid-stream.
fn model_accepts_fleet(
    model: &FexIot,
    graphs: &[fexiot_graph::InteractionGraph],
) -> Result<(), String> {
    use fexiot_gnn::Encoder;
    let enc = &model.scorer().encoder;
    for (home, g) in graphs.iter().enumerate() {
        for n in &g.nodes {
            let got = n.features.len();
            let want = match enc {
                Encoder::Gcn(e) => Some(e.input_dim),
                Encoder::Gin(e) => Some(e.input_dim),
                Encoder::Magnn(m) => m
                    .type_dims
                    .iter()
                    .find(|(p, _)| *p == n.rule.platform)
                    .map(|&(_, d)| d),
            };
            match want {
                None => {
                    return Err(format!(
                        "home {home} has platform {:?} but the model carries no \
                         projection for it",
                        n.rule.platform
                    ));
                }
                Some(want) if want != got => {
                    return Err(format!(
                        "home {home}: {:?} node feature dim {got} != model input dim {want}",
                        n.rule.platform
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Adapts the trained [`FexIot`] model to the streaming [`Detector`] trait.
struct ModelDetector<'a>(&'a FexIot);

impl fexiot_stream::Detector for ModelDetector<'_> {
    fn detect(&self, graph: &fexiot_graph::InteractionGraph) -> fexiot_stream::StreamVerdict {
        let d = self.0.detect(graph);
        fexiot_stream::StreamVerdict {
            vulnerable: d.vulnerable,
            score: d.score,
            drifting: d.drifting,
        }
    }
}

/// The `serve` arm: stream a replayed (or recorded) fleet through the
/// bounded-mailbox pipeline, publishing actor telemetry to the global
/// registry and handing the run summary back for the report's `stream`
/// section.
fn serve(
    args: &Args,
    store: &mut Option<Store>,
    critical_path: &mut Option<Vec<fexiot_obs::CriticalPathEntry>>,
    telemetry: &mut Option<fexiot_obs::FleetTelemetry>,
    stream_section: &mut Option<fexiot_obs::Json>,
) -> ExitCode {
    // The (homes, home-size, seed) triple defines both the offline graphs
    // and — in the default --replay mode — the simulated event stream. A
    // wire file from --input pairs with the triple that recorded it.
    let seed = args.get_u64("seed", 42);
    let mut fleet_cfg = fexiot_stream::FleetConfig {
        homes: args.get_usize("homes", 6).max(1),
        home_size: args.get_usize("home-size", 6).max(1),
        seed,
        ..fexiot_stream::FleetConfig::default()
    };
    fleet_cfg.sim.duration *= args.get_u64("sim-scale", 1).max(1);
    let fleet = fexiot_stream::replay_fleet(&fleet_cfg);

    let wire_events;
    let events: &[fexiot_stream::HomeEvent] = match args.get("input") {
        None => &fleet.events,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read wire file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fexiot_stream::parse_wire(&text) {
                Ok((_, events)) => {
                    wire_events = events;
                    &wire_events
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if let Some(bad) = events.iter().find(|e| e.home >= fleet.graphs.len()) {
        eprintln!(
            "serve: event for home {} but the fleet has {} homes \
             (--homes/--home-size/--seed must match the recording)",
            bad.home,
            fleet.graphs.len()
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = args.get("record") {
        if let Err(e) = std::fs::write(path, fexiot_stream::write_wire("cli-serve", events)) {
            eprintln!("cannot write wire recording {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("recorded {} events to {path}", events.len());
    }

    let Some(overflow) = fexiot_stream::Overflow::parse(args.get("overflow").unwrap_or("block"))
    else {
        eprintln!("--overflow must be 'block' or 'shed'");
        return usage();
    };
    let defaults = fexiot_stream::StreamConfig::default();
    let cfg = fexiot_stream::StreamConfig {
        shards: args.get_usize("shards", defaults.shards).max(1),
        mailbox_cap: args.get_usize("mailbox-cap", defaults.mailbox_cap).max(1),
        overflow,
        ingest_rate: args.get_usize("ingest-rate", defaults.ingest_rate).max(1),
        maintain_rate: args.get_usize("maintain-rate", defaults.maintain_rate).max(1),
        detect_rate: args.get_usize("detect-rate", defaults.detect_rate).max(1),
        round_events: args.get_usize("round-events", defaults.round_events).max(1),
        slow_shard: args.get("slow-shard").and_then(|v| v.parse().ok()),
    };

    // Streaming telemetry specs: p99 virtual-time latency, shed deltas, and
    // per-round throughput — the series slo-stream.toml rules evaluate.
    if let Some(tel) = telemetry.as_mut() {
        for spec in [
            fexiot_obs::SampleSpec::HistQuantile {
                name: "stream.detect.latency_ticks".into(),
                q: 0.99,
            },
            fexiot_obs::SampleSpec::CounterDelta("stream.mailbox.shed".into()),
            fexiot_obs::SampleSpec::Gauge("stream.ingest.events_per_round".into()),
        ] {
            if let Err(e) = tel.store.add_spec(spec) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // A serving process hot-loads its model — from `--model PATH` or the
    // `--store` registry — and never trains. The registry default is magnn:
    // the replay fleet is five-platform heterogeneous, and only MAGNN
    // carries per-platform projections (see model_accepts_fleet).
    let model = if args.get("model").is_none() && store.is_none() {
        None
    } else {
        match resolve_model(args, store, false, "magnn") {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(m) = &model {
        if let Err(e) = model_accepts_fleet(m, &fleet.graphs) {
            eprintln!(
                "serve: --model cannot score this fleet ({e}); the replay fleet is \
                 five-platform heterogeneous, so train with `--encoder magnn`, or \
                 drop --model to use the runtime detector"
            );
            return ExitCode::FAILURE;
        }
    }

    println!(
        "serving {} homes · {} events ({}) · {} shard(s) · mailboxes cap {} policy {} · detector {}",
        fleet.graphs.len(),
        events.len(),
        if args.get("input").is_some() {
            "wire replay"
        } else {
            "seeded replay"
        },
        cfg.shards,
        cfg.mailbox_cap,
        overflow.name(),
        if model.is_some() { "trained model" } else { "runtime features" },
    );

    let reg = std::sync::Arc::clone(fexiot_obs::global());
    let t0 = std::time::Instant::now();
    let out = match &model {
        Some(m) => fexiot_stream::run_stream(
            &fleet.graphs,
            events,
            &ModelDetector(m),
            &cfg,
            &reg,
            telemetry.as_mut(),
        ),
        None => fexiot_stream::run_stream(
            &fleet.graphs,
            events,
            &fexiot_stream::RuntimeDetector::default(),
            &cfg,
            &reg,
            telemetry.as_mut(),
        ),
    };
    // Wall-clock throughput is advisory-only (timing-suffixed, so excluded
    // from every determinism-checked surface).
    let secs = t0.elapsed().as_secs_f64();
    if secs > 0.0 {
        reg.gauge_set(
            "stream.ingest.events_per_sec",
            out.stats.events as f64 / secs,
        );
    }

    let s = &out.stats;
    println!(
        "stream done: {} events → {} detected ({} vulnerable, {} drifting), {} shed · {} rounds / {} ticks · {} stall ticks",
        s.events, s.detected, s.vulnerable, s.drifting, s.shed, s.rounds, s.ticks, s.stall_ticks
    );
    for a in &s.actors {
        println!(
            "  actor {:<9} cap {:>4} ({}): in {:>6}  out {:>6}  shed {:>5}  stalls {:>5}  max depth {:>3}",
            a.name, a.capacity, a.policy, a.enqueued, a.dequeued, a.shed, a.stall_ticks, a.max_depth
        );
    }
    println!("detections digest fnv1a:{:016x}", s.digest);

    *stream_section = Some(s.to_json());
    *critical_path = Some(out.critical_path);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Args {
        Args::parse_from("train".into(), flags.iter().map(|s| s.to_string()).collect())
            .expect("flags should parse")
    }

    #[test]
    fn parses_valued_and_boolean_flags() {
        let args = parse(&["--graphs", "120", "--obs-summary", "--seed", "7"]);
        assert_eq!(args.get_usize("graphs", 0), 120);
        assert_eq!(args.get_u64("seed", 0), 7);
        // Boolean flags parse as present-with-empty-value.
        assert_eq!(args.get("obs-summary"), Some(""));
        assert_eq!(args.get("obs-out"), None);
    }

    #[test]
    fn rejects_positional_arguments() {
        let parsed = Args::parse_from("train".into(), vec!["stray".into()]);
        assert!(parsed.is_none());
    }

    #[test]
    fn known_obs_flags_pass_validation() {
        let args = parse(&[
            "--obs-summary",
            "--obs-out",
            "results/obs",
            "--obs-stream",
            "events.jsonl",
            "--obs-stream-timing",
            "exclude",
            "--obs-flame",
            "run.flame",
        ]);
        let obs = fexiot_obs::ObsCli::from_pairs(&args.values).expect("all flags known");
        assert!(obs.summary && obs.enabled());
        assert!(!obs.include_stream_timing);
        assert!(obs.flame.is_some());
    }

    #[test]
    fn unknown_obs_flag_is_rejected_with_the_known_list() {
        let args = parse(&["--obs-steam", "events.jsonl"]);
        let err = fexiot_obs::ObsCli::from_pairs(&args.values).unwrap_err();
        assert!(err.contains("--obs-steam"), "names the offender: {err}");
        for known in fexiot_obs::cli::OBS_FLAGS {
            assert!(err.contains(known), "lists --{known}: {err}");
        }
    }

    #[test]
    fn bad_stream_timing_mode_is_rejected() {
        let args = parse(&["--obs-stream-timing", "sometimes"]);
        let err = fexiot_obs::ObsCli::from_pairs(&args.values).unwrap_err();
        assert!(err.contains("sometimes"));
        // Non-obs flags stay permissive; only the obs namespace is strict.
        let args = parse(&["--definitely-not-a-flag", "x"]);
        assert!(fexiot_obs::ObsCli::from_pairs(&args.values).is_ok());
    }
}
