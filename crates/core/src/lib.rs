//! # fexiot
//!
//! A from-scratch Rust reproduction of **FexIoT** — *Federated IoT
//! Interaction Vulnerability Analysis* (ICDE 2023): federated, explainable
//! GNN-based detection of interaction vulnerabilities in smart-home
//! automation across heterogeneous closed-source platforms.
//!
//! The pipeline: rule descriptions + event logs are fused into interaction
//! graphs ([`fexiot_graph`]), encoded by contrastive GNNs ([`fexiot_gnn`]),
//! trained federatedly with layer-wise clustering ([`fexiot_fed`]), screened
//! for drifting patterns ([`fexiot_ml::DriftDetector`]), and explained by a
//! SHAP-guided Monte-Carlo beam search ([`fexiot_explain`]).
//!
//! ## Quickstart
//!
//! ```
//! use fexiot::{FexIot, FexIotConfig};
//! use fexiot_graph::{generate_dataset, DatasetConfig};
//! use fexiot_tensor::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let mut cfg = DatasetConfig::small_ifttt();
//! cfg.graph_count = 60;
//! let dataset = generate_dataset(&cfg, &mut rng);
//! let (train, test) = dataset.train_test_split(0.8, &mut rng);
//!
//! let model = FexIot::train(&train, FexIotConfig::default());
//! let metrics = model.evaluate(&test);
//! assert!(metrics.accuracy > 0.5);
//! ```

pub mod config;
pub mod federation;
pub mod pipeline;
pub mod warm;

pub use config::FexIotConfig;
pub use federation::{build_federation, build_federation_with_data, FederationConfig};
pub use pipeline::{build_encoder, Detection, FexIot};
pub use warm::{dataset_identity, load_or_generate_dataset, load_or_train_model, model_identity};

// Re-export the sub-crates for downstream users of the facade.
pub use fexiot_explain as explain;
pub use fexiot_fed as fed;
pub use fexiot_gnn as gnn;
pub use fexiot_graph as graph;
pub use fexiot_ml as ml;
pub use fexiot_nlp as nlp;
pub use fexiot_store as store;
pub use fexiot_tensor as tensor;
