//! Warm-start plumbing: load datasets and trained models from a
//! `fexiot-store` artifact store, falling back to a cold build on any miss
//! or corruption.
//!
//! The rules that keep warm and cold runs byte-identical:
//!
//! 1. **Identity is pure configuration.** Keys derive from
//!    `(seed, scale, encoder, feature dims, schema version)` only — never
//!    thread width, wall clock, or load order — so a warm run at any
//!    `--threads` hits what any cold run wrote.
//! 2. **Skipping work consumes no shared RNG.** Every producer here seeds a
//!    fresh `Rng` from configuration (dataset generation, the train/test
//!    split, training), so eliding it leaves every other RNG stream
//!    untouched and downstream output bit-identical.
//! 3. **Corruption degrades to cold.** A failed verification is reported as
//!    a note and the cold path runs; the rebuilt artifact replaces the bad
//!    blob. Never a panic, never a silently-wrong warm load.

use crate::{FexIot, FexIotConfig};
use fexiot_gnn::EncoderKind;
use fexiot_graph::serialize as graph_codec;
use fexiot_graph::{generate_dataset, DatasetConfig, FeatureConfig, GraphDataset};
use fexiot_store::{ArtifactKind, Identity, Store};
use fexiot_tensor::Rng;

/// What `load_or_*` did, plus human-readable notes for stderr. Notes never
/// go to stdout: warm/cold stdout must stay byte-identical.
pub struct WarmOutcome<T> {
    pub value: T,
    /// True if the artifact came out of the store without a rebuild.
    pub warm: bool,
    pub notes: Vec<String>,
}

pub fn encoder_name(kind: EncoderKind) -> &'static str {
    match kind {
        EncoderKind::Gcn => "gcn",
        EncoderKind::Gin => "gin",
        EncoderKind::Magnn => "magnn",
    }
}

pub fn parse_encoder(name: &str) -> Option<EncoderKind> {
    match name {
        "gcn" => Some(EncoderKind::Gcn),
        "gin" => Some(EncoderKind::Gin),
        "magnn" => Some(EncoderKind::Magnn),
        _ => None,
    }
}

fn feature_dims() -> (u32, u32) {
    let f = FeatureConfig::small();
    (f.word_dim as u32, f.sentence_dim as u32)
}

/// Identity of a CLI-generated dataset: seed, graph count, and corpus
/// flavor (`ifttt` homogeneous vs `hetero` five-platform).
pub fn dataset_identity(seed: u64, graphs: usize, hetero: bool) -> Identity {
    let (wd, sd) = feature_dims();
    Identity::new(
        seed,
        graphs as u64,
        if hetero { "hetero" } else { "ifttt" },
        wd,
        sd,
    )
}

/// Identity of a CLI-trained model: seed, training-set size, encoder kind.
pub fn model_identity(seed: u64, train_graphs: usize, encoder: EncoderKind) -> Identity {
    let (wd, sd) = feature_dims();
    Identity::new(seed, train_graphs as u64, encoder_name(encoder), wd, sd)
}

/// Identity of a federation checkpoint line: seed, fleet size, and the
/// strategy/dataset discriminators. `rounds` is deliberately excluded so a
/// rerun asking for *more* rounds resumes from the latest checkpoint
/// instead of starting over.
pub fn checkpoint_identity(seed: u64, clients: usize, strategy: &str, graphs: usize) -> Identity {
    let (wd, sd) = feature_dims();
    Identity::new(seed, clients as u64, "fed", wd, sd)
        .with_extra(&format!("strategy={strategy},graphs={graphs}"))
}

fn cli_dataset_config(graphs: usize, hetero: bool) -> DatasetConfig {
    let mut cfg = if hetero {
        DatasetConfig::small_hetero()
    } else {
        DatasetConfig::small_ifttt()
    };
    cfg.graph_count = graphs;
    cfg
}

/// The CLI's dataset builder, store-aware. Cold path generates and (when a
/// store is open) persists; warm path deserializes the cached featurized
/// graphs and skips corpus generation + NLP featurization entirely.
pub fn load_or_generate_dataset(
    store: Option<&mut Store>,
    seed: u64,
    graphs: usize,
    hetero: bool,
) -> WarmOutcome<GraphDataset> {
    let mut notes = Vec::new();
    let id = dataset_identity(seed, graphs, hetero);
    if let Some(store) = &store {
        match store.get(ArtifactKind::Dataset, &id) {
            Ok(bytes) => match graph_codec::dataset_from_bytes(&bytes) {
                Ok(ds) => {
                    return WarmOutcome {
                        value: ds,
                        warm: true,
                        notes: vec![format!("store: warm dataset hit ({} graphs)", graphs)],
                    }
                }
                Err(e) => notes.push(format!(
                    "store: corrupt dataset payload for {} ({e}); rebuilding cold",
                    id.key(ArtifactKind::Dataset)
                )),
            },
            Err(fexiot_store::StoreError::Missing { .. }) => {
                notes.push("store: dataset miss; generating cold".to_string())
            }
            Err(e) => notes.push(format!("store: {e}; generating cold")),
        }
    }
    let mut rng = Rng::seed_from_u64(seed);
    let ds = generate_dataset(&cli_dataset_config(graphs, hetero), &mut rng);
    if let Some(store) = store {
        if let Err(e) = store.put(ArtifactKind::Dataset, &id, &graph_codec::dataset_to_bytes(&ds)) {
            notes.push(format!("store: cannot cache dataset: {e}"));
        }
    }
    WarmOutcome {
        value: ds,
        warm: false,
        notes,
    }
}

/// Train-or-load for the model registry: mirrors the `train` subcommand's
/// exact cold path (dataset of `train_graphs`, 80/20 split seeded from
/// `seed ^ 0x5EED`, [`FexIot::train`]) so a model trained by `train --store`
/// and one trained on demand by `eval --store` are bit-identical.
pub fn load_or_train_model(
    store: Option<&mut Store>,
    seed: u64,
    train_graphs: usize,
    encoder: EncoderKind,
) -> WarmOutcome<FexIot> {
    let mut notes = Vec::new();
    let id = model_identity(seed, train_graphs, encoder.clone());
    if let Some(store) = &store {
        match store.get(ArtifactKind::Model, &id) {
            Ok(bytes) => match FexIot::load_from_bytes(&bytes) {
                Ok(model) => {
                    return WarmOutcome {
                        value: model,
                        warm: true,
                        notes: vec![format!(
                            "store: warm model hit ({})",
                            encoder_name(encoder.clone())
                        )],
                    }
                }
                Err(e) => notes.push(format!(
                    "store: corrupt model payload for {} ({e}); retraining cold",
                    id.key(ArtifactKind::Model)
                )),
            },
            Err(fexiot_store::StoreError::Missing { .. }) => {
                notes.push("store: model miss; training cold".to_string())
            }
            Err(e) => notes.push(format!("store: {e}; training cold")),
        }
    }
    let hetero = encoder == EncoderKind::Magnn;
    // The dataset itself is store-cacheable; reuse the dataset path so an
    // on-demand training run still warm-loads its graphs. The store borrow
    // is threaded through both steps.
    let mut store = store;
    let ds = load_or_generate_dataset(store.as_deref_mut(), seed, train_graphs, hetero);
    notes.extend(ds.notes);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
    let (train, _test) = ds.value.train_test_split(0.8, &mut rng);
    let cfg = FexIotConfig::default().with_encoder(encoder.clone()).with_seed(seed);
    let model = FexIot::train(&train, cfg);
    if let Some(store) = store {
        if let Err(e) = store.put(ArtifactKind::Model, &id, &model.save_to_bytes()) {
            notes.push(format!("store: cannot cache model: {e}"));
        }
    }
    WarmOutcome {
        value: model,
        warm: false,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fexiot-warm-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn dataset_cold_then_warm_is_bit_identical() {
        let dir = tmpdir("ds");
        let mut store = Store::open(&dir).unwrap();
        let cold = load_or_generate_dataset(Some(&mut store), 42, 30, false);
        assert!(!cold.warm);
        let warm = load_or_generate_dataset(Some(&mut store), 42, 30, false);
        assert!(warm.warm);
        assert_eq!(cold.value.graphs, warm.value.graphs);
        // And matches a store-less run exactly.
        let plain = load_or_generate_dataset(None, 42, 30, false);
        assert_eq!(plain.value.graphs, warm.value.graphs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_identities_do_not_collide() {
        let dir = tmpdir("ids");
        let mut store = Store::open(&dir).unwrap();
        let a = load_or_generate_dataset(Some(&mut store), 1, 20, false);
        let b = load_or_generate_dataset(Some(&mut store), 2, 20, false);
        let c = load_or_generate_dataset(Some(&mut store), 1, 20, true);
        assert!(!a.warm && !b.warm && !c.warm);
        assert_eq!(store.list().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_dataset_blob_degrades_to_cold_rebuild() {
        let dir = tmpdir("corrupt");
        let mut store = Store::open(&dir).unwrap();
        let cold = load_or_generate_dataset(Some(&mut store), 9, 20, false);
        // Flip a byte in the blob on disk.
        let entry = store.list()[0];
        let blob = dir.join("blobs").join(format!("{:016x}.bin", entry.blob));
        let mut bytes = std::fs::read(&blob).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&blob, &bytes).unwrap();
        let rebuilt = load_or_generate_dataset(Some(&mut store), 9, 20, false);
        assert!(!rebuilt.warm, "corrupt blob must not warm-load");
        assert!(rebuilt.notes.iter().any(|n| n.contains("dataset")));
        assert_eq!(cold.value.graphs, rebuilt.value.graphs);
        // The rebuild re-put a good blob: next run is warm again.
        let warm = load_or_generate_dataset(Some(&mut store), 9, 20, false);
        assert!(warm.warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_registry_train_or_load_is_deterministic() {
        let dir = tmpdir("model");
        let mut store = Store::open(&dir).unwrap();
        let cold = load_or_train_model(Some(&mut store), 3, 60, EncoderKind::Gin);
        assert!(!cold.warm);
        let warm = load_or_train_model(Some(&mut store), 3, 60, EncoderKind::Gin);
        assert!(warm.warm);
        assert_eq!(cold.value.save_to_bytes(), warm.value.save_to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
