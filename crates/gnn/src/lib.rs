//! # fexiot-gnn
//!
//! Graph neural network encoders for the FexIoT reproduction: GCN, GIN-0,
//! and a simplified MAGNN for heterogeneous five-platform graphs, plus the
//! siamese contrastive trainer of Eq. (2) whose representations feed each
//! client's linear classification head.

pub mod encoder;
pub mod gcn;
pub mod gin;
pub mod magnn;
pub mod serialize;
pub mod trainer;

pub use encoder::{Encoder, EncoderKind};
pub use gcn::Gcn;
pub use gin::Gin;
pub use magnn::Magnn;
pub use serialize::{encoder_from_bytes, encoder_to_bytes};
pub use trainer::{
    binary_labels, embed_all, head_feature_dim, head_features, head_features_all,
    train_contrastive, ContrastiveConfig,
};
