//! Simplified MAGNN (Fu et al., WWW 2020): metapath-aggregated heterogeneous
//! graph encoder — the model the paper uses on the five-platform dataset.
//!
//! Nodes carry *per-platform* feature spaces (word vs. sentence embeddings of
//! different dims); MAGNN first projects each node type into a common hidden
//! space, then aggregates along two metapath families (same-platform edges
//! and cross-platform edges), and finally mixes the metapath summaries with
//! learned semantic attention. Relative to the full MAGNN we use simple mean
//! intra-metapath aggregation instead of the relational rotation encoder —
//! the part of the architecture that matters here is the type projection +
//! inter-metapath attention (documented substitution, see DESIGN.md).

use fexiot_graph::{FeatureConfig, InteractionGraph, Platform};
use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// Number of metapath families (same-platform, cross-platform).
const METAPATHS: usize = 2;

/// A MAGNN encoder.
#[derive(Clone)]
pub struct Magnn {
    /// Per-platform input dims, in `Platform::ALL` order.
    pub type_dims: Vec<(Platform, usize)>,
    pub hidden: usize,
    pub att_dim: usize,
    pub output_dim: usize,
    /// Layout: `[W_type...; (W_m, b_m) x METAPATHS, W_att, b_att, q; W_out]`.
    pub params: ParamVec,
}

impl Magnn {
    pub fn new(
        type_dims: Vec<(Platform, usize)>,
        hidden: usize,
        att_dim: usize,
        output_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(!type_dims.is_empty(), "magnn: need at least one node type");
        let mut params = Vec::new();
        for &(_, d) in &type_dims {
            params.push(Matrix::glorot(d, hidden, rng));
        }
        for _ in 0..METAPATHS {
            params.push(Matrix::glorot(hidden, hidden, rng));
            params.push(Matrix::zeros(1, hidden));
        }
        params.push(Matrix::glorot(hidden, att_dim, rng));
        params.push(Matrix::zeros(1, att_dim));
        params.push(Matrix::glorot(att_dim, 1, rng));
        params.push(Matrix::glorot(hidden, output_dim, rng));
        Self {
            type_dims,
            hidden,
            att_dim,
            output_dim,
            params,
        }
    }

    /// Registers all five platforms with the dims implied by `config`.
    pub fn for_config(
        config: FeatureConfig,
        hidden: usize,
        att_dim: usize,
        output_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let type_dims = Platform::ALL
            .iter()
            .map(|&p| (p, config.node_dim(p)))
            .collect();
        Self::new(type_dims, hidden, att_dim, output_dim, rng)
    }

    pub fn embed_dim(&self) -> usize {
        self.output_dim
    }

    pub fn layer_sizes(&self) -> Vec<usize> {
        vec![self.type_dims.len(), METAPATHS * 2 + 3, 1]
    }

    pub fn forward_with(&self, tape: &mut Tape, vars: &[Var], graph: &InteractionGraph) -> Var {
        assert_eq!(vars.len(), self.params.len(), "magnn: var count mismatch");
        let n = graph.node_count();
        assert!(n > 0, "magnn: empty graph");
        let t_count = self.type_dims.len();

        // ---- Type-specific projection into the shared hidden space.
        let mut h: Option<Var> = None;
        for (ti, &(platform, d)) in self.type_dims.iter().enumerate() {
            let members: Vec<usize> = (0..n)
                .filter(|&i| graph.nodes[i].rule.platform == platform)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut x_t = Matrix::zeros(members.len(), d);
            let mut scatter = Matrix::zeros(n, members.len());
            for (r, &node) in members.iter().enumerate() {
                let f = &graph.nodes[node].features;
                assert_eq!(
                    f.len(),
                    d,
                    "magnn: node feature dim {} != registered {} for {:?}",
                    f.len(),
                    d,
                    platform
                );
                x_t.row_mut(r).copy_from_slice(f);
                scatter[(node, r)] = 1.0;
            }
            let x_t = tape.constant(x_t);
            let s_t = tape.constant(scatter);
            let proj = tape.matmul(x_t, vars[ti]);
            let placed = tape.matmul(s_t, proj);
            h = Some(match h {
                Some(acc) => tape.add(acc, placed),
                None => placed,
            });
        }
        let h = h.unwrap_or_else(|| {
            panic!(
                "magnn: no node matched a registered platform; graph platforms {:?}",
                graph.platforms()
            )
        });

        // ---- Metapath aggregation: same-platform and cross-platform edges.
        let adjs = metapath_adjacencies(graph);
        let mut summaries = Vec::with_capacity(METAPATHS);
        let w_att = vars[t_count + METAPATHS * 2];
        let b_att = vars[t_count + METAPATHS * 2 + 1];
        let q = vars[t_count + METAPATHS * 2 + 2];
        let mut scores = Vec::with_capacity(METAPATHS);
        for (m, adj) in adjs.into_iter().enumerate() {
            let a = tape.constant(adj);
            let w = vars[t_count + 2 * m];
            let b = vars[t_count + 2 * m + 1];
            let prop = tape.matmul(a, h);
            let z = tape.matmul(prop, w);
            let z = tape.add_row_broadcast(z, b);
            let h_m = tape.relu(z);
            // Semantic attention score for this metapath.
            let att_in = tape.matmul(h_m, w_att);
            let att_in = tape.add_row_broadcast(att_in, b_att);
            let att = tape.tanh(att_in);
            let pooled = tape.mean_rows(att);
            let raw = tape.matmul(pooled, q);
            let score = tape.tanh(raw); // bounded before exp
            summaries.push(h_m);
            scores.push(score);
        }
        // Softmax over the (two) metapath scores, composed explicitly.
        let exps: Vec<Var> = scores.iter().map(|&s| tape.exp(s)).collect();
        let mut denom = exps[0];
        for &e in &exps[1..] {
            denom = tape.add(denom, e);
        }
        let mut mixed: Option<Var> = None;
        for (h_m, e) in summaries.into_iter().zip(exps) {
            let alpha = tape.div(e, denom);
            let scaled = tape.mul_scalar_var(h_m, alpha);
            mixed = Some(match mixed {
                Some(acc) => tape.add(acc, scaled),
                None => scaled,
            });
        }
        let mixed = mixed.expect("at least one metapath");

        let pooled = tape.mean_rows(mixed);
        tape.matmul(pooled, *vars.last().expect("magnn has params"))
    }
}

/// Normalized adjacencies (with self-loops) restricted to same-platform and
/// cross-platform edges, respectively.
fn metapath_adjacencies(graph: &InteractionGraph) -> [Matrix; METAPATHS] {
    let n = graph.node_count();
    let mut same = Matrix::eye(n);
    let mut cross = Matrix::eye(n);
    for &(u, v) in &graph.edges {
        if u == v {
            continue;
        }
        let target = if graph.nodes[u].rule.platform == graph.nodes[v].rule.platform {
            &mut same
        } else {
            &mut cross
        };
        target[(u, v)] = 1.0;
        target[(v, u)] = 1.0;
    }
    [row_normalize(same), row_normalize(cross)]
}

fn row_normalize(mut a: Matrix) -> Matrix {
    for r in 0..a.rows() {
        let sum: f64 = a.row(r).iter().sum();
        if sum > 0.0 {
            for v in a.row_mut(r) {
                *v /= sum;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use fexiot_graph::{CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder};

    fn hetero_graph(seed: u64) -> InteractionGraph {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        let index = CorpusIndex::build(rules);
        GraphBuilder::new(FeatureConfig::small()).sample_graph(&index, 8, &mut rng)
    }

    #[test]
    fn handles_heterogeneous_feature_dims() {
        let g = hetero_graph(1);
        let mut rng = Rng::seed_from_u64(2);
        let enc = Encoder::Magnn(Magnn::for_config(
            FeatureConfig::small(),
            16,
            8,
            8,
            &mut rng,
        ));
        let z = enc.embed(&g);
        assert_eq!(z.len(), 8);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_sizes_match_params() {
        let mut rng = Rng::seed_from_u64(3);
        let m = Magnn::for_config(FeatureConfig::small(), 16, 8, 8, &mut rng);
        assert_eq!(m.layer_sizes().iter().sum::<usize>(), m.params.len());
        assert_eq!(m.layer_sizes(), vec![5, 7, 1]);
    }

    #[test]
    fn gradients_reach_type_projections_present_in_graph() {
        let g = hetero_graph(4);
        let mut rng = Rng::seed_from_u64(5);
        let magnn = Magnn::for_config(FeatureConfig::small(), 12, 6, 4, &mut rng);
        let mut tape = Tape::new();
        let vars: Vec<Var> = magnn.params.iter().map(|p| tape.param(p.clone())).collect();
        let z = magnn.forward_with(&mut tape, &vars, &g);
        let sq = tape.hadamard(z, z);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let platforms = g.platforms();
        for (ti, &(p, _)) in magnn.type_dims.iter().enumerate() {
            let gnorm = grads.get(vars[ti], &magnn.params[ti]).frobenius_norm();
            if platforms.contains(&p) {
                assert!(gnorm > 0.0, "projection for {p:?} got zero gradient");
            } else {
                assert_eq!(gnorm, 0.0, "absent platform {p:?} should get zero gradient");
            }
        }
    }

    #[test]
    fn attention_weights_mix_metapaths() {
        // Both metapath branches must influence the output: perturbing the
        // cross-metapath weight changes the embedding of a cross-platform graph.
        let g = hetero_graph(6);
        let mut rng = Rng::seed_from_u64(7);
        let mut magnn = Magnn::for_config(FeatureConfig::small(), 12, 6, 4, &mut rng);
        let before = Encoder::Magnn(magnn.clone()).embed(&g);
        let t = magnn.type_dims.len();
        // Perturb W for metapath 1 (cross).
        let w = &mut magnn.params[t + 2];
        let perturbed = w.map(|v| v + 0.5);
        *w = perturbed;
        let after = Encoder::Magnn(magnn).embed(&g);
        let diff: f64 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-9, "cross metapath had no influence");
    }
}
