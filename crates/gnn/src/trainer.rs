//! Siamese contrastive training of graph encoders (paper §III-B1, Eq. 2):
//! same-class pairs are pulled together, different-class pairs are pushed
//! apart up to a margin `k`. The learned representations feed each client's
//! linear `SGDClassifier` head.

use crate::encoder::Encoder;
use fexiot_graph::{GraphDataset, InteractionGraph};
use fexiot_par::{PairScope, ParPool};
use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::Adam;
use fexiot_tensor::rng::Rng;

/// Contrastive-training hyperparameters.
#[derive(Debug, Clone)]
pub struct ContrastiveConfig {
    /// Margin `k` in Eq. (2).
    pub margin: f64,
    /// Margin multiplier for pairs where exactly one graph is class 0
    /// (benign). The detection head is a *binary* linear model over the
    /// multi-class representation, so benign must sit outside the convex
    /// hull of the vulnerability clusters; a wider benign margin enforces
    /// that geometry.
    pub benign_margin_boost: f64,
    pub lr: f64,
    pub epochs: usize,
    /// Contrastive pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    pub seed: u64,
}

impl Default for ContrastiveConfig {
    fn default() -> Self {
        Self {
            margin: 1.0,
            benign_margin_boost: 2.0,
            lr: 1e-3,
            epochs: 5,
            pairs_per_epoch: 64,
            seed: 0,
        }
    }
}

/// Trains `encoder` in place on labeled graphs; returns the mean loss of the
/// final epoch. Labels may be any class ids (the paper uses the fine-grained
/// vulnerability classes — that is what makes the seven clusters of Fig. 6
/// separable). Pair sampling is class-balanced: half same-class, half
/// different-class pairs, so the margin term is actually exercised.
pub fn train_contrastive(
    encoder: &mut Encoder,
    graphs: &[InteractionGraph],
    labels: &[usize],
    config: &ContrastiveConfig,
) -> f64 {
    train_contrastive_with(&fexiot_par::pool(), encoder, graphs, labels, config)
}

/// [`train_contrastive`] on an explicit pool. Pair sampling, the Adam update,
/// and the loss accumulation stay on the calling thread; each step's two
/// Siamese branches build and differentiate their tapes concurrently on a
/// [`PairScope`] (see [`step`]) — the per-step f64 operation sequence is
/// identical at any thread count, so the trained parameters are bit-equal to
/// the sequential run's.
pub fn train_contrastive_with(
    pool: &ParPool,
    encoder: &mut Encoder,
    graphs: &[InteractionGraph],
    labels: &[usize],
    config: &ContrastiveConfig,
) -> f64 {
    assert_eq!(
        graphs.len(),
        labels.len(),
        "contrastive: label count mismatch"
    );
    let _span = fexiot_obs::span("gnn.trainer.contrastive");
    let started = fexiot_obs::global_enabled().then(std::time::Instant::now);
    let mut rng = Rng::seed_from_u64(config.seed);
    if graphs.len() < 2 {
        return 0.0;
    }
    // Group indices by class.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &c) in labels.iter().enumerate() {
        by_class.entry(c).or_default().push(i);
    }
    let classes: Vec<Vec<usize>> = by_class.into_values().collect();
    let multi_member: Vec<usize> = (0..classes.len())
        .filter(|&c| classes[c].len() >= 2)
        .collect();

    let mut adam = Adam::new(config.lr, encoder.params());
    let mut last_loss = 0.0;
    let mut total_steps = 0usize;
    pool.scope_pair(|scope| {
        for _ in 0..config.epochs {
            let mut epoch_loss = 0.0;
            let mut steps = 0usize;
            for _ in 0..config.pairs_per_epoch {
                let (i, j, different) =
                    if classes.len() >= 2 && (multi_member.is_empty() || rng.bool(0.5)) {
                        // Different-class pair.
                        let a = rng.usize(classes.len());
                        let mut b = rng.usize(classes.len());
                        if b == a {
                            b = (b + 1) % classes.len();
                        }
                        (*rng.choose(&classes[a]), *rng.choose(&classes[b]), true)
                    } else if !multi_member.is_empty() {
                        // Same-class pair from a class with at least two members.
                        let pool = &classes[*rng.choose(&multi_member)];
                        let i = pool[rng.usize(pool.len())];
                        let mut j = pool[rng.usize(pool.len())];
                        if j == i {
                            j = pool[(pool.iter().position(|&x| x == i).expect("i in pool") + 1)
                                % pool.len()];
                        }
                        (i, j, false)
                    } else {
                        // Single class with one member each cannot form a pair.
                        continue;
                    };
                if i == j {
                    continue;
                }
                // Wider margin between benign and any vulnerable class.
                let crosses_benign = (labels[i] == 0) != (labels[j] == 0);
                let margin = if different && crosses_benign {
                    config.margin * config.benign_margin_boost
                } else {
                    config.margin
                };
                step(
                    encoder,
                    &mut adam,
                    scope,
                    &graphs[i],
                    &graphs[j],
                    different,
                    margin,
                    &mut epoch_loss,
                );
                steps += 1;
            }
            last_loss = epoch_loss / steps.max(1) as f64;
            fexiot_obs::hist_record(
                "gnn.trainer.epoch_loss",
                fexiot_obs::buckets::LOSS,
                last_loss,
            );
            fexiot_obs::counter_add("gnn.trainer.pairs", steps as u64);
            total_steps += steps;
        }
    });
    // Throughput gauge: each contrastive step forwards two graphs. The
    // `_per_sec` suffix marks it as wall-clock data, kept out of
    // deterministic exports.
    if let Some(started) = started {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            fexiot_obs::gauge_set(
                "gnn.trainer.graphs_per_sec",
                (2 * total_steps) as f64 / secs,
            );
        }
    }
    last_loss
}

/// One Siamese branch: a fresh tape with the encoder registered and one
/// graph forwarded.
fn branch(encoder: &Encoder, g: &InteractionGraph) -> (Tape, Vec<Var>, Var) {
    let mut tape = Tape::new();
    let vars = encoder.register(&mut tape);
    let z = encoder.forward_with(&mut tape, &vars, g);
    (tape, vars, z)
}

/// One contrastive step on a pair; accumulates the loss value.
///
/// The two Siamese branches are independent computations over the same
/// parameters, so each builds its own [`Tape`] — concurrently via
/// [`PairScope::join2`] — and a tiny junction tape evaluates Eq. (2) on the
/// two embeddings, yielding the upstream gradient seeds for
/// [`Tape::backward_seeded`] on each branch. Bit-identity with the historic
/// single-tape step: every encoder parameter is referenced exactly once per
/// branch forward, and the single-tape reverse walk visited the `zb` branch
/// first (higher node indices) then added the `za` contribution with
/// `axpy(1.0, ..)` — the per-parameter combine below replays exactly that
/// `g_b + g_a` operation order, and the junction tape replays the identical
/// loss ops, so every f64 in the update matches the sequential run.
#[allow(clippy::too_many_arguments)]
fn step(
    encoder: &mut Encoder,
    adam: &mut Adam,
    scope: &PairScope,
    ga: &InteractionGraph,
    gb: &InteractionGraph,
    different: bool,
    margin: f64,
    epoch_loss: &mut f64,
) {
    let y = if different { 1.0 } else { 0.0 }; // Eq. (2): y = 1 for different classes
    let enc: &Encoder = encoder;
    let ((tape_b, vars_b, zb), (tape_a, vars_a, za)) =
        scope.join2(|| branch(enc, gb), || branch(enc, ga));
    // Junction: Eq. (2) on the two boundary embeddings, registered as params
    // of a third tape so its backward yields the branch gradient seeds.
    let mut tj = Tape::new();
    let pa = tj.param(tape_a.value(za).clone());
    let pb = tj.param(tape_b.value(zb).clone());
    let d2 = tj.sq_distance(pa, pb);
    // Eq. (2): L = d^2 (1 - y) + max(0, k - d^2) y.
    let pull = tj.scale(d2, 1.0 - y);
    let neg = tj.scale(d2, -1.0);
    let marg = tj.add_scalar(neg, margin);
    let hinge = tj.relu(marg);
    let push = tj.scale(hinge, y);
    let loss = tj.add(pull, push);
    let gj = tj.backward(loss);
    let seed_a = gj.get(pa, tape_a.value(za));
    let seed_b = gj.get(pb, tape_b.value(zb));
    let (grads_b, grads_a) = scope.join2(
        || tape_b.backward_seeded(zb, seed_b),
        || tape_a.backward_seeded(za, seed_a),
    );
    let gs: Vec<Matrix> = vars_a
        .iter()
        .zip(vars_b.iter())
        .zip(encoder.params())
        .map(|((&va, &vb), p)| {
            // Single-tape accumulation order: slot initialized by the zb
            // branch, za branch added via axpy.
            match (grads_b.try_get(vb), grads_a.try_get(va)) {
                (Some(gb_), Some(ga_)) => {
                    let mut g = gb_.clone();
                    g.axpy(1.0, ga_);
                    g
                }
                (Some(gb_), None) => gb_.clone(),
                (None, Some(ga_)) => ga_.clone(),
                (None, None) => Matrix::zeros(p.rows(), p.cols()),
            }
        })
        .collect();
    // The norm reduction is a full pass over every gradient, so only pay
    // for it while observability is on.
    if fexiot_obs::global_enabled() {
        let sq_sum: f64 = gs
            .iter()
            .flat_map(|m| m.as_slice().iter())
            .map(|g| g * g)
            .sum();
        fexiot_obs::hist_record(
            "gnn.trainer.grad_norm",
            fexiot_obs::buckets::NORM,
            sq_sum.sqrt(),
        );
    }
    adam.step(encoder.params_mut(), &gs);
    *epoch_loss += tj.value(loss)[(0, 0)];
}

/// Embeds every graph into a row matrix.
pub fn embed_all(encoder: &Encoder, graphs: &[InteractionGraph]) -> Matrix {
    embed_all_with(&fexiot_par::pool(), encoder, graphs)
}

/// [`embed_all`] on an explicit pool. Each row is a pure function of one
/// graph, so rows are scattered across the pool and gathered in graph order.
pub fn embed_all_with(pool: &ParPool, encoder: &Encoder, graphs: &[InteractionGraph]) -> Matrix {
    assert!(!graphs.is_empty(), "embed_all: empty input");
    let rows: Vec<Vec<f64>> = pool.map_indexed(graphs, |_, g| encoder.embed(g));
    Matrix::from_rows(&rows)
}

/// Input dimensionality of the per-client linear head: the graph embedding
/// plus two fused runtime statistics.
pub fn head_feature_dim(encoder: &Encoder) -> usize {
    encoder.embed_dim() + 2
}

/// Features the linear classification head consumes: the GNN graph
/// representation concatenated with the graph's minimum trigger-consistency
/// and trigger-completion over nodes (1.0 for offline graphs). Mean readout
/// dilutes a single tampered node; the min-statistics keep the online
/// fusion's attack evidence visible to the linear model — the paper's
/// "real-time device status affects vulnerability detection results".
pub fn head_features(encoder: &Encoder, graph: &InteractionGraph) -> Vec<f64> {
    let mut out = encoder.embed(graph);
    let (mut min_consistency, mut min_completion) = (1.0f64, 1.0f64);
    for node in &graph.nodes {
        let d = node.features.len();
        if d < fexiot_graph::RUNTIME_FEATURE_DIMS {
            continue;
        }
        let block = d - fexiot_graph::RUNTIME_FEATURE_DIMS;
        // Offline graphs (online flag 0) carry no runtime evidence.
        if node.features[block + 6] == 0.0 {
            continue;
        }
        min_consistency = min_consistency.min(node.features[block + 3]);
        min_completion = min_completion.min(node.features[block + 4]);
    }
    out.push(min_consistency);
    out.push(min_completion);
    out
}

/// [`head_features`] for every graph, as a row matrix.
pub fn head_features_all(encoder: &Encoder, graphs: &[InteractionGraph]) -> Matrix {
    head_features_all_with(&fexiot_par::pool(), encoder, graphs)
}

/// [`head_features_all`] on an explicit pool (pure per-graph rows, gathered
/// in graph order).
pub fn head_features_all_with(
    pool: &ParPool,
    encoder: &Encoder,
    graphs: &[InteractionGraph],
) -> Matrix {
    assert!(!graphs.is_empty(), "head_features_all: empty input");
    let rows: Vec<Vec<f64>> = pool.map_indexed(graphs, |_, g| head_features(encoder, g));
    Matrix::from_rows(&rows)
}

/// Binary labels of a dataset (vulnerable = 1).
pub fn binary_labels(dataset: &GraphDataset) -> Vec<usize> {
    dataset
        .graphs
        .iter()
        .map(GraphDataset::binary_label)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gin::Gin;
    use fexiot_graph::{generate_dataset, DatasetConfig};
    use fexiot_tensor::stats::euclidean;

    fn dataset(seed: u64) -> (Vec<InteractionGraph>, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let labels = binary_labels(&ds);
        (ds.graphs, labels)
    }

    #[test]
    fn training_reduces_loss_and_separates_classes() {
        let (graphs, labels) = dataset(1);
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(2);
        let mut enc = Encoder::Gin(Gin::new(d, &[16], 8, &mut rng));

        let sep = |enc: &Encoder| {
            // Mean between-class distance minus mean within-class distance.
            let embs = embed_all(enc, &graphs);
            let mut within = Vec::new();
            let mut between = Vec::new();
            for i in 0..graphs.len() {
                for j in (i + 1)..graphs.len() {
                    let dist = euclidean(embs.row(i), embs.row(j));
                    if labels[i] == labels[j] {
                        within.push(dist);
                    } else {
                        between.push(dist);
                    }
                }
            }
            fexiot_tensor::stats::mean(&between) - fexiot_tensor::stats::mean(&within)
        };

        let before = sep(&enc);
        let cfg = ContrastiveConfig {
            epochs: 8,
            pairs_per_epoch: 48,
            lr: 3e-3,
            ..Default::default()
        };
        train_contrastive(&mut enc, &graphs, &labels, &cfg);
        let after = sep(&enc);
        assert!(
            after > before,
            "separation did not improve: before {before}, after {after}"
        );
    }

    #[test]
    fn single_class_dataset_trains_without_panic() {
        let (graphs, _) = dataset(3);
        let labels = vec![0usize; graphs.len()];
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(4);
        let mut enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
        let cfg = ContrastiveConfig {
            epochs: 2,
            pairs_per_epoch: 8,
            ..Default::default()
        };
        let loss = train_contrastive(&mut enc, &graphs, &labels, &cfg);
        assert!(loss.is_finite());
    }

    #[test]
    fn embed_all_shapes() {
        let (graphs, _) = dataset(5);
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(6);
        let enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
        let m = embed_all(&enc, &graphs[..10]);
        assert_eq!(m.shape(), (10, 4));
    }

    /// All f64 entries of all parameter matrices, as raw bits.
    fn param_bits(enc: &Encoder) -> Vec<u64> {
        enc.params()
            .iter()
            .flat_map(|m| m.as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn training_is_bit_identical_at_any_thread_count() {
        let (graphs, labels) = dataset(7);
        let d = graphs[0].nodes[0].features.len();
        let cfg = ContrastiveConfig {
            epochs: 2,
            pairs_per_epoch: 16,
            ..Default::default()
        };
        let run = |threads: usize| {
            let mut rng = Rng::seed_from_u64(8);
            let mut enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
            let loss = train_contrastive_with(
                &fexiot_par::ParPool::new(threads),
                &mut enc,
                &graphs,
                &labels,
                &cfg,
            );
            (loss.to_bits(), param_bits(&enc))
        };
        let baseline = run(1);
        for threads in [2, 7] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn batch_embeds_are_bit_identical_at_any_thread_count() {
        let (graphs, _) = dataset(9);
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(10);
        let enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
        let bits = |m: Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        let base_embed = bits(embed_all_with(&fexiot_par::ParPool::new(1), &enc, &graphs));
        let base_head = bits(head_features_all_with(
            &fexiot_par::ParPool::new(1),
            &enc,
            &graphs,
        ));
        for threads in [2, 7] {
            let pool = fexiot_par::ParPool::new(threads);
            assert_eq!(bits(embed_all_with(&pool, &enc, &graphs)), base_embed);
            assert_eq!(bits(head_features_all_with(&pool, &enc, &graphs)), base_head);
        }
    }
}
