//! Siamese contrastive training of graph encoders (paper §III-B1, Eq. 2):
//! same-class pairs are pulled together, different-class pairs are pushed
//! apart up to a margin `k`. The learned representations feed each client's
//! linear `SGDClassifier` head.

use crate::encoder::Encoder;
use fexiot_graph::{GraphDataset, InteractionGraph};
use fexiot_tensor::autograd::Tape;
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::Adam;
use fexiot_tensor::rng::Rng;

/// Contrastive-training hyperparameters.
#[derive(Debug, Clone)]
pub struct ContrastiveConfig {
    /// Margin `k` in Eq. (2).
    pub margin: f64,
    /// Margin multiplier for pairs where exactly one graph is class 0
    /// (benign). The detection head is a *binary* linear model over the
    /// multi-class representation, so benign must sit outside the convex
    /// hull of the vulnerability clusters; a wider benign margin enforces
    /// that geometry.
    pub benign_margin_boost: f64,
    pub lr: f64,
    pub epochs: usize,
    /// Contrastive pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    pub seed: u64,
}

impl Default for ContrastiveConfig {
    fn default() -> Self {
        Self {
            margin: 1.0,
            benign_margin_boost: 2.0,
            lr: 1e-3,
            epochs: 5,
            pairs_per_epoch: 64,
            seed: 0,
        }
    }
}

/// Trains `encoder` in place on labeled graphs; returns the mean loss of the
/// final epoch. Labels may be any class ids (the paper uses the fine-grained
/// vulnerability classes — that is what makes the seven clusters of Fig. 6
/// separable). Pair sampling is class-balanced: half same-class, half
/// different-class pairs, so the margin term is actually exercised.
pub fn train_contrastive(
    encoder: &mut Encoder,
    graphs: &[InteractionGraph],
    labels: &[usize],
    config: &ContrastiveConfig,
) -> f64 {
    assert_eq!(
        graphs.len(),
        labels.len(),
        "contrastive: label count mismatch"
    );
    let _span = fexiot_obs::span("gnn.trainer.contrastive");
    let started = fexiot_obs::global_enabled().then(std::time::Instant::now);
    let mut rng = Rng::seed_from_u64(config.seed);
    if graphs.len() < 2 {
        return 0.0;
    }
    // Group indices by class.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &c) in labels.iter().enumerate() {
        by_class.entry(c).or_default().push(i);
    }
    let classes: Vec<Vec<usize>> = by_class.into_values().collect();
    let multi_member: Vec<usize> = (0..classes.len())
        .filter(|&c| classes[c].len() >= 2)
        .collect();

    let mut adam = Adam::new(config.lr, encoder.params());
    let mut last_loss = 0.0;
    let mut total_steps = 0usize;
    for _ in 0..config.epochs {
        let mut epoch_loss = 0.0;
        let mut steps = 0usize;
        for _ in 0..config.pairs_per_epoch {
            let (i, j, different) =
                if classes.len() >= 2 && (multi_member.is_empty() || rng.bool(0.5)) {
                    // Different-class pair.
                    let a = rng.usize(classes.len());
                    let mut b = rng.usize(classes.len());
                    if b == a {
                        b = (b + 1) % classes.len();
                    }
                    (*rng.choose(&classes[a]), *rng.choose(&classes[b]), true)
                } else if !multi_member.is_empty() {
                    // Same-class pair from a class with at least two members.
                    let pool = &classes[*rng.choose(&multi_member)];
                    let i = pool[rng.usize(pool.len())];
                    let mut j = pool[rng.usize(pool.len())];
                    if j == i {
                        j = pool[(pool.iter().position(|&x| x == i).expect("i in pool") + 1)
                            % pool.len()];
                    }
                    (i, j, false)
                } else {
                    // Single class with one member each cannot form a pair.
                    continue;
                };
            if i == j {
                continue;
            }
            // Wider margin between benign and any vulnerable class.
            let crosses_benign = (labels[i] == 0) != (labels[j] == 0);
            let margin = if different && crosses_benign {
                config.margin * config.benign_margin_boost
            } else {
                config.margin
            };
            step(
                encoder,
                &mut adam,
                &graphs[i],
                &graphs[j],
                different,
                margin,
                &mut epoch_loss,
            );
            steps += 1;
        }
        last_loss = epoch_loss / steps.max(1) as f64;
        fexiot_obs::hist_record(
            "gnn.trainer.epoch_loss",
            fexiot_obs::buckets::LOSS,
            last_loss,
        );
        fexiot_obs::counter_add("gnn.trainer.pairs", steps as u64);
        total_steps += steps;
    }
    // Throughput gauge: each contrastive step forwards two graphs. The
    // `_per_sec` suffix marks it as wall-clock data, kept out of
    // deterministic exports.
    if let Some(started) = started {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            fexiot_obs::gauge_set(
                "gnn.trainer.graphs_per_sec",
                (2 * total_steps) as f64 / secs,
            );
        }
    }
    last_loss
}

/// One contrastive step on a pair; accumulates the loss value.
fn step(
    encoder: &mut Encoder,
    adam: &mut Adam,
    ga: &InteractionGraph,
    gb: &InteractionGraph,
    different: bool,
    margin: f64,
    epoch_loss: &mut f64,
) {
    let y = if different { 1.0 } else { 0.0 }; // Eq. (2): y = 1 for different classes
    let mut tape = Tape::new();
    let vars = encoder.register(&mut tape);
    let za = encoder.forward_with(&mut tape, &vars, ga);
    let zb = encoder.forward_with(&mut tape, &vars, gb);
    let d2 = tape.sq_distance(za, zb);
    // Eq. (2): L = d^2 (1 - y) + max(0, k - d^2) y.
    let pull = tape.scale(d2, 1.0 - y);
    let neg = tape.scale(d2, -1.0);
    let marg = tape.add_scalar(neg, margin);
    let hinge = tape.relu(marg);
    let push = tape.scale(hinge, y);
    let loss = tape.add(pull, push);
    let grads = tape.backward(loss);
    let gs: Vec<Matrix> = vars
        .iter()
        .zip(encoder.params())
        .map(|(&v, p)| grads.get(v, p))
        .collect();
    // The norm reduction is a full pass over every gradient, so only pay
    // for it while observability is on.
    if fexiot_obs::global_enabled() {
        let sq_sum: f64 = gs
            .iter()
            .flat_map(|m| m.as_slice().iter())
            .map(|g| g * g)
            .sum();
        fexiot_obs::hist_record(
            "gnn.trainer.grad_norm",
            fexiot_obs::buckets::NORM,
            sq_sum.sqrt(),
        );
    }
    adam.step(encoder.params_mut(), &gs);
    *epoch_loss += tape.value(loss)[(0, 0)];
}

/// Embeds every graph into a row matrix.
pub fn embed_all(encoder: &Encoder, graphs: &[InteractionGraph]) -> Matrix {
    assert!(!graphs.is_empty(), "embed_all: empty input");
    let rows: Vec<Vec<f64>> = graphs.iter().map(|g| encoder.embed(g)).collect();
    Matrix::from_rows(&rows)
}

/// Input dimensionality of the per-client linear head: the graph embedding
/// plus two fused runtime statistics.
pub fn head_feature_dim(encoder: &Encoder) -> usize {
    encoder.embed_dim() + 2
}

/// Features the linear classification head consumes: the GNN graph
/// representation concatenated with the graph's minimum trigger-consistency
/// and trigger-completion over nodes (1.0 for offline graphs). Mean readout
/// dilutes a single tampered node; the min-statistics keep the online
/// fusion's attack evidence visible to the linear model — the paper's
/// "real-time device status affects vulnerability detection results".
pub fn head_features(encoder: &Encoder, graph: &InteractionGraph) -> Vec<f64> {
    let mut out = encoder.embed(graph);
    let (mut min_consistency, mut min_completion) = (1.0f64, 1.0f64);
    for node in &graph.nodes {
        let d = node.features.len();
        if d < fexiot_graph::RUNTIME_FEATURE_DIMS {
            continue;
        }
        let block = d - fexiot_graph::RUNTIME_FEATURE_DIMS;
        // Offline graphs (online flag 0) carry no runtime evidence.
        if node.features[block + 6] == 0.0 {
            continue;
        }
        min_consistency = min_consistency.min(node.features[block + 3]);
        min_completion = min_completion.min(node.features[block + 4]);
    }
    out.push(min_consistency);
    out.push(min_completion);
    out
}

/// [`head_features`] for every graph, as a row matrix.
pub fn head_features_all(encoder: &Encoder, graphs: &[InteractionGraph]) -> Matrix {
    assert!(!graphs.is_empty(), "head_features_all: empty input");
    let rows: Vec<Vec<f64>> = graphs.iter().map(|g| head_features(encoder, g)).collect();
    Matrix::from_rows(&rows)
}

/// Binary labels of a dataset (vulnerable = 1).
pub fn binary_labels(dataset: &GraphDataset) -> Vec<usize> {
    dataset
        .graphs
        .iter()
        .map(GraphDataset::binary_label)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gin::Gin;
    use fexiot_graph::{generate_dataset, DatasetConfig};
    use fexiot_tensor::stats::euclidean;

    fn dataset(seed: u64) -> (Vec<InteractionGraph>, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let labels = binary_labels(&ds);
        (ds.graphs, labels)
    }

    #[test]
    fn training_reduces_loss_and_separates_classes() {
        let (graphs, labels) = dataset(1);
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(2);
        let mut enc = Encoder::Gin(Gin::new(d, &[16], 8, &mut rng));

        let sep = |enc: &Encoder| {
            // Mean between-class distance minus mean within-class distance.
            let embs = embed_all(enc, &graphs);
            let mut within = Vec::new();
            let mut between = Vec::new();
            for i in 0..graphs.len() {
                for j in (i + 1)..graphs.len() {
                    let dist = euclidean(embs.row(i), embs.row(j));
                    if labels[i] == labels[j] {
                        within.push(dist);
                    } else {
                        between.push(dist);
                    }
                }
            }
            fexiot_tensor::stats::mean(&between) - fexiot_tensor::stats::mean(&within)
        };

        let before = sep(&enc);
        let cfg = ContrastiveConfig {
            epochs: 8,
            pairs_per_epoch: 48,
            lr: 3e-3,
            ..Default::default()
        };
        train_contrastive(&mut enc, &graphs, &labels, &cfg);
        let after = sep(&enc);
        assert!(
            after > before,
            "separation did not improve: before {before}, after {after}"
        );
    }

    #[test]
    fn single_class_dataset_trains_without_panic() {
        let (graphs, _) = dataset(3);
        let labels = vec![0usize; graphs.len()];
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(4);
        let mut enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
        let cfg = ContrastiveConfig {
            epochs: 2,
            pairs_per_epoch: 8,
            ..Default::default()
        };
        let loss = train_contrastive(&mut enc, &graphs, &labels, &cfg);
        assert!(loss.is_finite());
    }

    #[test]
    fn embed_all_shapes() {
        let (graphs, _) = dataset(5);
        let d = graphs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(6);
        let enc = Encoder::Gin(Gin::new(d, &[8], 4, &mut rng));
        let m = embed_all(&enc, &graphs[..10]);
        assert_eq!(m.shape(), (10, 4));
    }
}
