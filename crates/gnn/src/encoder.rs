//! The graph-encoder abstraction shared by GCN, GIN, and MAGNN.
//!
//! Encoders expose their weights as an ordered, *layered* parameter list so
//! the federated layer (Alg. 1) can cluster and aggregate per GNN layer,
//! bottom-up, and so the communication accountant can price per-layer
//! uploads.

use crate::{gcn::Gcn, gin::Gin, magnn::Magnn};
use fexiot_graph::InteractionGraph;
use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::optim::ParamVec;

/// Which GNN architecture to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum EncoderKind {
    /// 3-layer graph convolutional network (Kipf & Welling).
    Gcn,
    /// Graph isomorphism network, GIN-0 variant (Xu et al.).
    Gin,
    /// Metapath-aggregated heterogeneous GNN (simplified MAGNN, Fu et al.).
    Magnn,
}

/// A graph encoder: interaction graph -> fixed-size embedding.
#[derive(Clone)]
pub enum Encoder {
    Gcn(Gcn),
    Gin(Gin),
    Magnn(Magnn),
}

impl Encoder {
    /// Output embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        match self {
            Encoder::Gcn(e) => e.embed_dim(),
            Encoder::Gin(e) => e.embed_dim(),
            Encoder::Magnn(e) => e.embed_dim(),
        }
    }

    /// Ordered parameter list (layered bottom-up).
    pub fn params(&self) -> &ParamVec {
        match self {
            Encoder::Gcn(e) => &e.params,
            Encoder::Gin(e) => &e.params,
            Encoder::Magnn(e) => &e.params,
        }
    }

    pub fn params_mut(&mut self) -> &mut ParamVec {
        match self {
            Encoder::Gcn(e) => &mut e.params,
            Encoder::Gin(e) => &mut e.params,
            Encoder::Magnn(e) => &mut e.params,
        }
    }

    /// Replaces all parameters (federated download).
    ///
    /// # Panics
    /// Panics if shapes are misaligned.
    pub fn set_params(&mut self, new: ParamVec) {
        let current = self.params_mut();
        assert_eq!(current.len(), new.len(), "set_params: layer count mismatch");
        for (c, n) in current.iter().zip(&new) {
            assert_eq!(c.shape(), n.shape(), "set_params: shape mismatch");
        }
        *current = new;
    }

    /// Number of parameter matrices per GNN layer, bottom-up. The sum equals
    /// `params().len()`. Alg. 1 clusters on these boundaries.
    pub fn layer_sizes(&self) -> Vec<usize> {
        match self {
            Encoder::Gcn(e) => e.layer_sizes(),
            Encoder::Gin(e) => e.layer_sizes(),
            Encoder::Magnn(e) => e.layer_sizes(),
        }
    }

    /// Registers the parameters on a tape (one var per matrix, same order).
    pub fn register(&self, tape: &mut Tape) -> Vec<Var> {
        self.params()
            .iter()
            .map(|p| tape.param(p.clone()))
            .collect()
    }

    /// Forward pass with pre-registered parameter vars; returns the `(1, d)`
    /// graph embedding node.
    pub fn forward_with(&self, tape: &mut Tape, vars: &[Var], graph: &InteractionGraph) -> Var {
        match self {
            Encoder::Gcn(e) => e.forward_with(tape, vars, graph),
            Encoder::Gin(e) => e.forward_with(tape, vars, graph),
            Encoder::Magnn(e) => e.forward_with(tape, vars, graph),
        }
    }

    /// Inference-only embedding of one graph.
    pub fn embed(&self, graph: &InteractionGraph) -> Vec<f64> {
        let mut tape = Tape::new();
        let vars = self.register(&mut tape);
        let z = self.forward_with(&mut tape, &vars, graph);
        tape.value(z).row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::{CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder};
    use fexiot_tensor::rng::Rng;

    pub(crate) fn sample_graphs(n: usize, seed: u64) -> Vec<InteractionGraph> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(80), &mut rng);
        let index = CorpusIndex::build(rules);
        let builder = GraphBuilder::new(FeatureConfig::small());
        (0..n)
            .map(|_| builder.sample_graph(&index, 6, &mut rng))
            .collect()
    }

    #[test]
    fn layer_sizes_sum_to_param_count() {
        let mut rng = Rng::seed_from_u64(1);
        let cfg = FeatureConfig::small();
        for enc in [
            Encoder::Gcn(Gcn::new(
                cfg.node_dim(fexiot_graph::Platform::Ifttt),
                &[16, 16],
                8,
                &mut rng,
            )),
            Encoder::Gin(Gin::new(
                cfg.node_dim(fexiot_graph::Platform::Ifttt),
                &[16, 16],
                8,
                &mut rng,
            )),
        ] {
            assert_eq!(enc.layer_sizes().iter().sum::<usize>(), enc.params().len());
        }
    }

    #[test]
    fn embeddings_have_declared_dim_and_are_deterministic() {
        let graphs = sample_graphs(3, 2);
        let mut rng = Rng::seed_from_u64(3);
        let d = graphs[0].nodes[0].features.len();
        let enc = Encoder::Gcn(Gcn::new(d, &[16, 16], 8, &mut rng));
        for g in &graphs {
            let a = enc.embed(g);
            let b = enc.embed(g);
            assert_eq!(a.len(), 8);
            assert_eq!(a, b);
            assert!(a.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn set_params_roundtrip() {
        let mut rng = Rng::seed_from_u64(4);
        let mut enc = Encoder::Gin(Gin::new(12, &[8], 4, &mut rng));
        let snapshot = enc.params().clone();
        let zeros: ParamVec = snapshot
            .iter()
            .map(|m| fexiot_tensor::Matrix::zeros(m.rows(), m.cols()))
            .collect();
        enc.set_params(zeros);
        assert!(enc.params().iter().all(|m| m.sum() == 0.0));
        enc.set_params(snapshot.clone());
        assert_eq!(enc.params(), &snapshot);
    }
}
