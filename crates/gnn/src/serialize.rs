//! Encoder persistence: architecture descriptor + weights, via the
//! first-party binary codec (no external dependencies, deterministic
//! roundtrips). The format lets a household checkpoint its representation
//! model on device (the paper runs clients on a Raspberry Pi).
//!
//! v2 frames store weights in the fixed-layout matrix format
//! (`write_matrix_fixed`): contiguous f64 LE payloads behind checksummed
//! headers, so the artifact store can verify and bulk-load them without a
//! per-element decode loop. Platform tags are shared with
//! `fexiot_graph::serialize` so models and cached datasets agree.

use crate::{Encoder, Gcn, Gin, Magnn};
use fexiot_graph::serialize::{platform_from_tag, platform_tag};
use fexiot_tensor::codec::{ByteReader, ByteWriter, CodecError};

const MAGIC: u64 = 0xFE_10_07_E4_C0_DE_02_00;

const TAG_GCN: u8 = 1;
const TAG_GIN: u8 = 2;
const TAG_MAGNN: u8 = 3;

/// Serializes an encoder (architecture + weights) into bytes.
pub fn encoder_to_bytes(encoder: &Encoder) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.write_u64(MAGIC);
    match encoder {
        Encoder::Gcn(e) => {
            w.write_u8(TAG_GCN);
            w.write_usize(e.input_dim);
            w.write_usize(e.hidden.len());
            for &h in &e.hidden {
                w.write_usize(h);
            }
            w.write_usize(e.output_dim);
            w.write_matrices_fixed(&e.params);
        }
        Encoder::Gin(e) => {
            w.write_u8(TAG_GIN);
            w.write_usize(e.input_dim);
            w.write_usize(e.hidden.len());
            for &h in &e.hidden {
                w.write_usize(h);
            }
            w.write_usize(e.output_dim);
            w.write_matrices_fixed(&e.params);
        }
        Encoder::Magnn(e) => {
            w.write_u8(TAG_MAGNN);
            w.write_usize(e.type_dims.len());
            for &(p, d) in &e.type_dims {
                w.write_u8(platform_tag(p));
                w.write_usize(d);
            }
            w.write_usize(e.hidden);
            w.write_usize(e.att_dim);
            w.write_usize(e.output_dim);
            w.write_matrices_fixed(&e.params);
        }
    }
    w.into_bytes()
}

/// Restores an encoder from [`encoder_to_bytes`] output.
pub fn encoder_from_bytes(bytes: &[u8]) -> Result<Encoder, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.read_u64()? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let tag = r.read_u8()?;
    match tag {
        TAG_GCN | TAG_GIN => {
            let input_dim = r.read_usize()?;
            let n_hidden = r.read_usize()?;
            let hidden: Result<Vec<usize>, _> = (0..n_hidden).map(|_| r.read_usize()).collect();
            let hidden = hidden?;
            let output_dim = r.read_usize()?;
            let params = r.read_matrices_fixed()?;
            Ok(if tag == TAG_GCN {
                Encoder::Gcn(Gcn {
                    input_dim,
                    hidden,
                    output_dim,
                    params,
                })
            } else {
                Encoder::Gin(Gin {
                    input_dim,
                    hidden,
                    output_dim,
                    params,
                })
            })
        }
        TAG_MAGNN => {
            let n_types = r.read_usize()?;
            let mut type_dims = Vec::with_capacity(n_types);
            for _ in 0..n_types {
                let p = platform_from_tag(r.read_u8()?)?;
                let d = r.read_usize()?;
                type_dims.push((p, d));
            }
            let hidden = r.read_usize()?;
            let att_dim = r.read_usize()?;
            let output_dim = r.read_usize()?;
            let params = r.read_matrices_fixed()?;
            Ok(Encoder::Magnn(Magnn {
                type_dims,
                hidden,
                att_dim,
                output_dim,
                params,
            }))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::FeatureConfig;
    use fexiot_tensor::rng::Rng;

    #[test]
    fn gcn_and_gin_roundtrip() {
        let mut rng = Rng::seed_from_u64(1);
        for enc in [
            Encoder::Gcn(Gcn::new(20, &[16, 8], 6, &mut rng)),
            Encoder::Gin(Gin::new(20, &[16], 6, &mut rng)),
        ] {
            let bytes = encoder_to_bytes(&enc);
            let back = encoder_from_bytes(&bytes).unwrap();
            assert_eq!(back.params(), enc.params());
            assert_eq!(back.layer_sizes(), enc.layer_sizes());
            assert_eq!(back.embed_dim(), enc.embed_dim());
        }
    }

    #[test]
    fn magnn_roundtrip_preserves_type_dims() {
        let mut rng = Rng::seed_from_u64(2);
        let enc = Encoder::Magnn(Magnn::for_config(
            FeatureConfig::small(),
            16,
            8,
            6,
            &mut rng,
        ));
        let bytes = encoder_to_bytes(&enc);
        let back = encoder_from_bytes(&bytes).unwrap();
        assert_eq!(back.params(), enc.params());
        if let (Encoder::Magnn(a), Encoder::Magnn(b)) = (&enc, &back) {
            assert_eq!(a.type_dims, b.type_dims);
        } else {
            panic!("wrong variant after roundtrip");
        }
    }

    #[test]
    fn restored_encoder_embeds_identically() {
        let mut rng = Rng::seed_from_u64(3);
        let mut gen = fexiot_graph::CorpusGenerator::new();
        let rules = gen.generate(&fexiot_graph::CorpusConfig::ifttt_only(40), &mut rng);
        let index = fexiot_graph::CorpusIndex::build(rules);
        let builder = fexiot_graph::GraphBuilder::new(FeatureConfig::small());
        let g = builder.sample_graph(&index, 5, &mut rng);
        let d = g.nodes[0].features.len();
        let enc = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
        let back = encoder_from_bytes(&encoder_to_bytes(&enc)).unwrap();
        assert_eq!(enc.embed(&g), back.embed(&g));
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(matches!(
            encoder_from_bytes(&[]),
            Err(CodecError::UnexpectedEof)
        ));
        let mut bytes = encoder_to_bytes(&Encoder::Gin(Gin::new(
            4,
            &[4],
            2,
            &mut Rng::seed_from_u64(4),
        )));
        bytes[0] ^= 0xFF; // break the magic
        assert!(matches!(
            encoder_from_bytes(&bytes),
            Err(CodecError::BadHeader)
        ));
    }
}
