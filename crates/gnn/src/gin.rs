//! Graph isomorphism network (Xu et al., 2019), GIN-0 variant: sum-style
//! aggregation `(A + I) H` followed by a two-layer MLP per GNN layer —
//! provably as powerful as the WL test, and the stronger of the paper's two
//! homogeneous encoders (Fig. 4).

use fexiot_graph::InteractionGraph;
use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// A GIN encoder. Per layer: `[W1, b1, W2, b2]` (the update MLP); then the
/// readout projection `W_out`.
#[derive(Clone)]
pub struct Gin {
    pub input_dim: usize,
    pub hidden: Vec<usize>,
    pub output_dim: usize,
    pub params: ParamVec,
}

impl Gin {
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize, rng: &mut Rng) -> Self {
        assert!(!hidden.is_empty(), "gin: need at least one hidden layer");
        let mut params = Vec::new();
        let mut prev = input_dim;
        for &h in hidden {
            params.push(Matrix::glorot(prev, h, rng));
            params.push(Matrix::zeros(1, h));
            params.push(Matrix::glorot(h, h, rng));
            params.push(Matrix::zeros(1, h));
            prev = h;
        }
        params.push(Matrix::glorot(prev, output_dim, rng));
        Self {
            input_dim,
            hidden: hidden.to_vec(),
            output_dim,
            params,
        }
    }

    pub fn embed_dim(&self) -> usize {
        self.output_dim
    }

    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![4; self.hidden.len()];
        sizes.push(1);
        sizes
    }

    pub fn forward_with(&self, tape: &mut Tape, vars: &[Var], graph: &InteractionGraph) -> Var {
        assert_eq!(vars.len(), self.params.len(), "gin: var count mismatch");
        // GIN-0: eps fixed at 0, aggregation is A + I. Normalize by degree+1
        // to keep activations bounded on large graphs (mean-GIN variant).
        let n = graph.node_count() as f64;
        let agg = tape.constant(graph.gin_adjacency(0.0).scale(1.0 / n.sqrt().max(1.0)));
        let mut h = tape.constant(graph.feature_matrix());
        for l in 0..self.hidden.len() {
            let base = 4 * l;
            let prop = tape.matmul(agg, h);
            let z1 = tape.matmul(prop, vars[base]);
            let z1 = tape.add_row_broadcast(z1, vars[base + 1]);
            let a1 = tape.relu(z1);
            let z2 = tape.matmul(a1, vars[base + 2]);
            let z2 = tape.add_row_broadcast(z2, vars[base + 3]);
            h = tape.relu(z2);
        }
        let pooled = tape.mean_rows(h);
        tape.matmul(pooled, *vars.last().expect("gin has params"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use fexiot_graph::{CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder};

    fn graphs(seed: u64, n: usize) -> Vec<InteractionGraph> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(60), &mut rng);
        let index = CorpusIndex::build(rules);
        let b = GraphBuilder::new(FeatureConfig::small());
        (0..n)
            .map(|_| b.sample_graph(&index, 5, &mut rng))
            .collect()
    }

    #[test]
    fn embedding_is_finite_and_sized() {
        let gs = graphs(1, 3);
        let d = gs[0].nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(2);
        let enc = Encoder::Gin(Gin::new(d, &[16, 16], 8, &mut rng));
        for g in &gs {
            let z = enc.embed(g);
            assert_eq!(z.len(), 8);
            assert!(z.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn structure_sensitivity() {
        // GIN should distinguish a chain from the same nodes with no edges.
        let gs = graphs(3, 1);
        let mut g = gs[0].clone();
        let d = g.nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(4);
        let enc = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
        let z_connected = enc.embed(&g);
        g.edges.clear();
        let z_disconnected = enc.embed(&g);
        let diff: f64 = z_connected
            .iter()
            .zip(&z_disconnected)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "GIN ignored structure");
    }

    #[test]
    fn param_count_matches_layout() {
        let mut rng = Rng::seed_from_u64(5);
        let gin = Gin::new(10, &[8, 8], 4, &mut rng);
        assert_eq!(gin.params.len(), 4 * 2 + 1);
        assert_eq!(gin.layer_sizes(), vec![4, 4, 1]);
    }
}
