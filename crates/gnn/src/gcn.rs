//! Graph convolutional network (Kipf & Welling, 2017). The paper adopts
//! three graph convolutional layers; propagation uses the symmetrically
//! normalized adjacency with self-loops, followed by mean readout and a
//! linear projection to the embedding space.

use fexiot_graph::InteractionGraph;
use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// A GCN encoder. Parameter layout: `[W_0, b_0, W_1, b_1, ..., W_out]`.
#[derive(Clone)]
pub struct Gcn {
    pub input_dim: usize,
    pub hidden: Vec<usize>,
    pub output_dim: usize,
    pub params: ParamVec,
}

impl Gcn {
    /// Creates a GCN with the given hidden layer widths (the paper uses 3
    /// convolutional layers, i.e. `hidden.len() == 2` plus the readout
    /// projection, or pass 3 widths for conv-only depth 3).
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize, rng: &mut Rng) -> Self {
        assert!(!hidden.is_empty(), "gcn: need at least one hidden layer");
        let mut params = Vec::new();
        let mut prev = input_dim;
        for &h in hidden {
            params.push(Matrix::glorot(prev, h, rng));
            params.push(Matrix::zeros(1, h));
            prev = h;
        }
        params.push(Matrix::glorot(prev, output_dim, rng));
        Self {
            input_dim,
            hidden: hidden.to_vec(),
            output_dim,
            params,
        }
    }

    pub fn embed_dim(&self) -> usize {
        self.output_dim
    }

    /// Each conv layer contributes `[W, b]`; the readout projection is the
    /// final single-matrix "layer".
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![2; self.hidden.len()];
        sizes.push(1);
        sizes
    }

    pub fn forward_with(&self, tape: &mut Tape, vars: &[Var], graph: &InteractionGraph) -> Var {
        assert_eq!(vars.len(), self.params.len(), "gcn: var count mismatch");
        let a = tape.constant(graph.normalized_adjacency());
        let mut h = tape.constant(graph.feature_matrix());
        for l in 0..self.hidden.len() {
            let w = vars[2 * l];
            let b = vars[2 * l + 1];
            let prop = tape.matmul(a, h);
            let z = tape.matmul(prop, w);
            let z = tape.add_row_broadcast(z, b);
            h = tape.relu(z);
        }
        let pooled = tape.mean_rows(h);
        tape.matmul(pooled, *vars.last().expect("gcn has params"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use fexiot_graph::{CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder};

    fn graph(seed: u64) -> InteractionGraph {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(60), &mut rng);
        let index = CorpusIndex::build(rules);
        GraphBuilder::new(FeatureConfig::small()).sample_graph(&index, 5, &mut rng)
    }

    #[test]
    fn embedding_shape_and_finite() {
        let g = graph(1);
        let d = g.nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(2);
        let enc = Encoder::Gcn(Gcn::new(d, &[16, 16], 8, &mut rng));
        let z = enc.embed(&g);
        assert_eq!(z.len(), 8);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn permutation_of_isolated_structure_changes_embedding() {
        // Different graphs should (generically) embed differently.
        let g1 = graph(3);
        let g2 = graph(4);
        let d = g1.nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(5);
        let enc = Encoder::Gcn(Gcn::new(d, &[16], 8, &mut rng));
        let z1 = enc.embed(&g1);
        let z2 = enc.embed(&g2);
        assert_ne!(z1, z2);
    }

    #[test]
    fn gradients_flow_to_all_layers() {
        let g = graph(6);
        let d = g.nodes[0].features.len();
        let mut rng = Rng::seed_from_u64(7);
        let gcn = Gcn::new(d, &[8, 8], 4, &mut rng);
        let mut tape = Tape::new();
        let vars: Vec<Var> = gcn.params.iter().map(|p| tape.param(p.clone())).collect();
        let z = gcn.forward_with(&mut tape, &vars, &g);
        let sq = tape.hadamard(z, z);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        for (i, (&v, p)) in vars.iter().zip(&gcn.params).enumerate() {
            let gnorm = grads.get(v, p).frobenius_norm();
            assert!(gnorm > 0.0, "layer {i} got zero gradient");
        }
    }
}
