//! Property-based tests for the NLP substrate: tokenizer invariants,
//! embedding determinism, DTW metric properties, and Jenks consistency.

use fexiot_nlp::dtw::dtw_distance;
use fexiot_nlp::jenks;
use fexiot_tensor::matrix::Matrix;
use fexiot_nlp::tokenize::{analyze, tokenize};
use fexiot_nlp::{Lexicon, PairFeatureExtractor, WordEmbedder, PAIR_FEATURE_DIM};
use proptest::prelude::*;

fn rows_to_matrix(rows: &[Vec<f64>], cols: usize) -> Matrix {
    if rows.is_empty() {
        Matrix::zeros(0, cols)
    } else {
        Matrix::from_rows(rows)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tokenizer_output_is_lowercase_alphanumeric(s in ".{0,80}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric() || c == '_'));
            // ASCII letters are lowercased; some Unicode letters (e.g. math
            // alphanumerics) have no lowercase mapping and pass through.
            prop_assert!(!tok.chars().any(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn analyze_never_panics_and_preserves_token_count_bound(s in ".{0,120}") {
        let lex = Lexicon::new();
        let toks = analyze(&s, &lex);
        prop_assert!(toks.len() <= tokenize(&s).len());
    }

    #[test]
    fn embeddings_unit_norm_for_any_word(w in "[a-z]{1,15}") {
        let lex = Lexicon::new();
        let emb = WordEmbedder::with_dim(16);
        let v = emb.embed(&w, &lex);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dtw_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(proptest::collection::vec(-1.0..1.0f64, 3), 0..5),
        b in proptest::collection::vec(proptest::collection::vec(-1.0..1.0f64, 3), 0..5),
    ) {
        let (a, b) = (rows_to_matrix(&a, 3), rows_to_matrix(&b, 3));
        let d_ab = dtw_distance(&a, &b);
        let d_ba = dtw_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(d_ab >= 0.0);
    }

    #[test]
    fn dtw_identity_of_indiscernibles(
        a in proptest::collection::vec(proptest::collection::vec(0.1..1.0f64, 3), 1..5),
    ) {
        let a = rows_to_matrix(&a, 3);
        prop_assert!(dtw_distance(&a, &a) < 1e-9);
    }

    #[test]
    fn jenks_breaks_sorted_and_classify_total(vals in proptest::collection::vec(-100.0..100.0f64, 1..40), k in 1usize..6) {
        let breaks = jenks::jenks_breaks(&vals, k);
        prop_assert!(breaks.windows(2).all(|w| w[0] <= w[1]));
        for &v in &vals {
            let class = jenks::classify(v, &breaks);
            prop_assert!(class <= breaks.len());
        }
    }

    #[test]
    fn pair_features_bounded(sa in "[a-z ]{5,60}", sb in "[a-z ]{5,60}") {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(8);
        let a = fexiot_nlp::parse_rule(&sa, &lex);
        let b = fexiot_nlp::parse_rule(&sb, &lex);
        let f = ex.pair_features(&a, &b, &lex);
        prop_assert_eq!(f.len(), PAIR_FEATURE_DIM);
        prop_assert!(f.iter().all(|v| v.is_finite()));
        prop_assert!(f.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }
}
