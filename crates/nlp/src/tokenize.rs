//! Tokenization and POS tagging for smart-home rule sentences.
//!
//! Replaces the paper's spaCy pipeline (§III-A1): lowercasing, punctuation
//! splitting, collocation merging ("water valve" → `water_valve`), lexicon
//! lookup with suffix/context fallbacks for POS, and simple lemmatization of
//! inflected verb forms ("detected" → "detect" when used verbally).

use crate::lexicon::{Lexicon, PosTag};

/// A token with its part-of-speech tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub pos: PosTag,
}

/// Splits raw text into lowercase word/number tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Tokenizes and merges known collocations into single tokens. Merging is
/// applied repeatedly so that e.g. "water leak sensor" becomes `leak_sensor`
/// via `water_leak` + `sensor`.
pub fn tokenize_merged(text: &str, lex: &Lexicon) -> Vec<String> {
    let mut tokens = tokenize(text);
    loop {
        let mut merged_any = false;
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            if i + 1 < tokens.len() {
                if let Some(m) = lex.merge_collocation(&tokens[i], &tokens[i + 1]) {
                    out.push(m.to_string());
                    i += 2;
                    merged_any = true;
                    continue;
                }
            }
            out.push(tokens[i].clone());
            i += 1;
        }
        tokens = out;
        if !merged_any {
            break;
        }
    }
    tokens
}

/// Strips common verb inflections to find a lexicon lemma, e.g. "detected" →
/// "detect", "turns" → "turn", "beeping" → "beep".
pub fn lemma(word: &str, lex: &Lexicon) -> String {
    if lex.get(word).is_some() {
        return word.to_string();
    }
    let candidates: &[(&str, usize, &str)] = &[
        ("ing", 3, ""),
        ("ing", 3, "e"), // beeping -> beep fails, closing -> close works with +e
        ("ied", 3, "y"),
        ("ed", 2, ""),
        ("ed", 2, "e"), // detected -> detect, closed -> close
        ("es", 2, ""),
        ("s", 1, ""),
    ];
    for (suffix, cut, append) in candidates {
        if word.len() > *cut + 1 && word.ends_with(suffix) {
            let stem = format!("{}{}", &word[..word.len() - cut], append);
            if lex.get(&stem).is_some() {
                return stem;
            }
        }
    }
    word.to_string()
}

/// POS-tags a token sequence. Lexicon lookups win; unknown words fall back to
/// suffix heuristics, then to a context rule (after a determiner → noun).
pub fn pos_tag(tokens: &[String], lex: &Lexicon) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    for tok in tokens.iter() {
        let lemmatized = lemma(tok, lex);
        let pos = if let Some(entry) = lex.get(&lemmatized) {
            entry.pos
        } else if tok.chars().all(|c| c.is_ascii_digit()) {
            PosTag::Number
        } else if tok.ends_with("ly") {
            PosTag::Adverb
        } else if tok.ends_with("ing") || tok.ends_with("ed") {
            PosTag::Verb
        } else {
            // Unknown open-class word in rule language: overwhelmingly a noun
            // (device/object jargon), regardless of context.
            PosTag::Noun
        };
        out.push(Token {
            text: lemmatized,
            pos,
        });
    }
    out
}

/// Full pipeline: tokenize → merge collocations → lemmatize → POS-tag.
pub fn analyze(text: &str, lex: &Lexicon) -> Vec<Token> {
    pos_tag(&tokenize_merged(text, lex), lex)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_punctuation() {
        assert_eq!(
            tokenize("Turn the light on, now!"),
            vec!["turn", "the", "light", "on", "now"]
        );
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(tokenize("humidity is 32"), vec!["humidity", "is", "32"]);
    }

    #[test]
    fn collocations_merged_recursively() {
        let lex = Lexicon::new();
        assert_eq!(
            tokenize_merged("close the water valve", &lex),
            vec!["close", "the", "water_valve"]
        );
        assert_eq!(
            tokenize_merged("water leak sensor is wet", &lex),
            vec!["leak_sensor", "is", "wet"]
        );
    }

    #[test]
    fn lemma_strips_inflections() {
        let lex = Lexicon::new();
        assert_eq!(lemma("detected", &lex), "detect");
        assert_eq!(lemma("turns", &lex), "turn");
        assert_eq!(lemma("closed", &lex), "closed"); // adjective form exists in lexicon
        assert_eq!(lemma("beeping", &lex), "beep");
        assert_eq!(lemma("unknownword", &lex), "unknownword");
    }

    #[test]
    fn pos_tags_known_sentence() {
        let lex = Lexicon::new();
        let toks = analyze("Close the water valve if a water leak is detected", &lex);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "close",
                "the",
                "water_valve",
                "if",
                "a",
                "water_leak",
                "is",
                "detect"
            ]
        );
        assert_eq!(toks[0].pos, PosTag::Verb);
        assert_eq!(toks[2].pos, PosTag::Noun);
        assert_eq!(toks[3].pos, PosTag::Conjunction);
    }

    #[test]
    fn unknown_words_default_to_noun() {
        let lex = Lexicon::new();
        let toks = analyze("the frobnicator is on", &lex);
        assert_eq!(toks[1].pos, PosTag::Noun);
    }

    #[test]
    fn numbers_tagged() {
        let lex = Lexicon::new();
        let toks = analyze("temperature is 72", &lex);
        assert_eq!(toks.last().unwrap().pos, PosTag::Number);
    }
}
