//! Jenks natural-breaks classification (Fisher's exact dynamic program).
//!
//! §III-A2: sensor readings in event logs are numeric ("humidity is 32") while
//! app descriptions use logical levels ("humidity is low"). The Jenks
//! algorithm chooses break points minimizing within-class variance, which the
//! log cleaner uses to map numeric readings onto logical levels.

/// Computes `k`-class natural breaks for `values`.
///
/// Returns the `k - 1` inner break values (upper bounds of the first `k - 1`
/// classes), in increasing order. Values equal to a break fall in the lower
/// class.
///
/// # Panics
/// Panics if `k == 0` or `values` is empty.
pub fn jenks_breaks(values: &[f64], k: usize) -> Vec<f64> {
    assert!(k >= 1, "jenks: k must be >= 1");
    assert!(!values.is_empty(), "jenks: empty input");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let k = k.min(n);
    if k == 1 {
        return Vec::new();
    }

    // Prefix sums for O(1) within-class sum of squared deviations.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, &v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // ssd of sorted[i..j] (half-open).
    let ssd = |i: usize, j: usize| -> f64 {
        let cnt = (j - i) as f64;
        if cnt <= 0.0 {
            return 0.0;
        }
        let sum = prefix[j] - prefix[i];
        (prefix_sq[j] - prefix_sq[i]) - sum * sum / cnt
    };

    // dp[c][j] = min total ssd splitting sorted[0..j] into c classes.
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0.0;
    for c in 1..=k {
        for j in c..=n {
            for i in (c - 1)..j {
                if dp[c - 1][i].is_finite() {
                    let cand = dp[c - 1][i] + ssd(i, j);
                    if cand < dp[c][j] {
                        dp[c][j] = cand;
                        cut[c][j] = i;
                    }
                }
            }
        }
    }

    // Walk back the cut positions -> break values.
    let mut breaks = Vec::with_capacity(k - 1);
    let mut j = n;
    for c in (2..=k).rev() {
        let i = cut[c][j];
        breaks.push(sorted[i - 1]);
        j = i;
    }
    breaks.reverse();
    breaks
}

/// Classifies `value` against breaks produced by [`jenks_breaks`]: returns the
/// class index in `0..k`.
pub fn classify(value: f64, breaks: &[f64]) -> usize {
    breaks.iter().take_while(|&&b| value > b).count()
}

/// Maps a class index to the logical level names used in rule descriptions.
pub fn level_name(class: usize, k: usize) -> &'static str {
    match (k, class) {
        (2, 0) => "low",
        (2, _) => "high",
        (3, 0) => "low",
        (3, 1) => "medium",
        (3, _) => "high",
        _ => {
            const NAMES: &[&str] = &["very_low", "low", "medium", "high", "very_high"];
            NAMES[class.min(NAMES.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_well_separated_clusters() {
        let vals = [1.0, 2.0, 1.5, 30.0, 31.0, 29.5];
        let breaks = jenks_breaks(&vals, 2);
        assert_eq!(breaks.len(), 1);
        assert!(breaks[0] >= 2.0 && breaks[0] < 29.5, "break {}", breaks[0]);
        assert_eq!(classify(1.0, &breaks), 0);
        assert_eq!(classify(30.0, &breaks), 1);
    }

    #[test]
    fn three_clusters() {
        let vals = [1.0, 1.2, 10.0, 10.5, 11.0, 50.0, 51.0];
        let breaks = jenks_breaks(&vals, 3);
        assert_eq!(breaks.len(), 2);
        assert_eq!(classify(1.1, &breaks), 0);
        assert_eq!(classify(10.2, &breaks), 1);
        assert_eq!(classify(50.5, &breaks), 2);
    }

    #[test]
    fn k_one_has_no_breaks() {
        assert!(jenks_breaks(&[1.0, 2.0, 3.0], 1).is_empty());
    }

    #[test]
    fn k_clamped_to_n() {
        let breaks = jenks_breaks(&[5.0, 1.0], 10);
        assert_eq!(breaks.len(), 1);
        assert_eq!(classify(1.0, &breaks), 0);
        assert_eq!(classify(5.0, &breaks), 1);
    }

    #[test]
    fn matches_brute_force_on_small_input() {
        // Brute-force the optimal 2-class split and compare total SSD.
        let vals = [2.0, 4.0, 7.0, 9.0, 15.0, 16.0];
        let ssd = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
        };
        let mut best = f64::INFINITY;
        for split in 1..vals.len() {
            best = best.min(ssd(&vals[..split]) + ssd(&vals[split..]));
        }
        let breaks = jenks_breaks(&vals, 2);
        let split = vals.iter().position(|&v| v > breaks[0]).unwrap();
        let got = ssd(&vals[..split]) + ssd(&vals[split..]);
        assert!((got - best).abs() < 1e-9, "got {got}, best {best}");
    }

    #[test]
    fn level_names() {
        assert_eq!(level_name(0, 2), "low");
        assert_eq!(level_name(1, 2), "high");
        assert_eq!(level_name(1, 3), "medium");
    }

    #[test]
    fn constant_input_is_stable() {
        let breaks = jenks_breaks(&[5.0; 8], 3);
        // All values identical: classification must put everything in one class.
        assert_eq!(classify(5.0, &breaks), 0);
    }
}
