//! Rule-pair correlation features (§III-A1).
//!
//! Given rule A (provider) and rule B (consumer), these features feed the
//! binary *action-trigger correlation* classifier that decides whether A's
//! action can trigger B: (i) DTW similarity of verb and object embedding
//! sequences, (ii) one-hot lexical-relation flags (synonym / hypernym /
//! meronym / holonym), (iii) sentence-level embedding similarity, plus
//! channel- and polarity-agreement signals derivable from the lexicon.

use crate::dtw::dtw_similarity;
use crate::embed::{cosine, SentenceEncoder, WordEmbedder};
use crate::lexicon::Lexicon;
use crate::parse::RuleParse;

/// Number of features produced by [`PairFeatureExtractor::pair_features`].
pub const PAIR_FEATURE_DIM: usize = 12;

/// Names of the features, aligned with the output vector (for reports).
pub const PAIR_FEATURE_NAMES: [&str; PAIR_FEATURE_DIM] = [
    "verb_dtw_sim",
    "object_dtw_sim",
    "rel_synonym",
    "rel_hypernym",
    "rel_meronym",
    "rel_holonym",
    "sentence_sim",
    "channel_match",
    "polarity_agreement",
    "state_sim",
    "location_match",
    "device_exact_match",
];

/// Extracts the correlation features for the ordered pair (A.action → B.trigger).
pub struct PairFeatureExtractor {
    words: WordEmbedder,
    sentences: SentenceEncoder,
}

impl PairFeatureExtractor {
    pub fn new() -> Self {
        Self {
            words: WordEmbedder::new(),
            sentences: SentenceEncoder::new(),
        }
    }

    /// A reduced-dimension extractor for scaled-down experiments.
    pub fn with_word_dim(dim: usize) -> Self {
        Self {
            words: WordEmbedder::with_dim(dim),
            sentences: SentenceEncoder::with_dims(dim, dim * 2),
        }
    }

    /// Computes the [`PAIR_FEATURE_DIM`]-dimensional feature vector.
    pub fn pair_features(&self, a: &RuleParse, b: &RuleParse, lex: &Lexicon) -> Vec<f64> {
        let a_act = &a.action;
        let b_trig = &b.trigger;

        let verb_sim = dtw_similarity(
            &self.words.embed_sequence(&a_act.verbs, lex),
            &self.words.embed_sequence(&b_trig.verbs, lex),
        );
        let obj_sim = dtw_similarity(
            &self.words.embed_sequence(&a_act.objects, lex),
            &self.words.embed_sequence(&b_trig.objects, lex),
        );

        let mut synonym = 0.0;
        let mut hypernym = 0.0;
        let mut meronym = 0.0;
        let mut holonym = 0.0;
        for x in &a_act.objects {
            for y in &b_trig.objects {
                if lex.are_synonyms(x, y) {
                    synonym = 1.0;
                }
                if lex.is_hypernym(x, y) || lex.is_hypernym(y, x) {
                    hypernym = 1.0;
                }
                if lex.is_meronym(x, y) {
                    meronym = 1.0;
                }
                if lex.is_holonym(x, y) {
                    holonym = 1.0;
                }
            }
        }

        let sent_a = self.sentences.encode(&a_act.tokens, lex);
        let sent_b = self.sentences.encode(&b_trig.tokens, lex);
        let sentence_sim = cosine(&sent_a, &sent_b);

        // Channel match: does any A-action word share a physical channel with
        // any B-trigger word? This is the physical-interaction signal ("heater
        // on" can raise "temperature high" triggers).
        let channels = |ws: &[String]| -> Vec<&'static str> {
            ws.iter().filter_map(|w| lex.channel_of(w)).collect()
        };
        let mut a_channels = channels(&a_act.objects);
        a_channels.extend(channels(&a_act.states));
        a_channels.extend(channels(&a_act.verbs));
        let mut b_channels = channels(&b_trig.objects);
        b_channels.extend(channels(&b_trig.states));
        let channel_match = if a_channels.iter().any(|c| b_channels.contains(c)) {
            1.0
        } else {
            0.0
        };

        // Polarity agreement between A's action words and B's trigger state
        // words: +1 if aligned, -1 if opposed, 0 if undetermined.
        let pol = |ws: &[String]| -> i32 { ws.iter().map(|w| lex.polarity(w) as i32).sum() };
        let pa = pol(&a_act.verbs) + pol(&a_act.states);
        let pb = pol(&b_trig.states) + pol(&b_trig.verbs);
        let polarity_agreement = ((pa.signum() * pb.signum()) as f64).clamp(-1.0, 1.0);

        let state_sim = dtw_similarity(
            &self.words.embed_sequence(&a_act.states, lex),
            &self.words.embed_sequence(&b_trig.states, lex),
        );

        // Location agreement: device identity is (kind, location), so an
        // action can only satisfy a trigger in the same place. A clause with
        // no location word is location-agnostic (counts as compatible).
        let location_match = if a_act.locations.is_empty() || b_trig.locations.is_empty() {
            0.5
        } else if a_act.locations.iter().any(|l| b_trig.locations.contains(l)) {
            1.0
        } else {
            0.0
        };

        // Exact device-word overlap between A's action objects and B's
        // trigger objects (the strongest explicit-correlation signal).
        let device_exact_match = if a_act.objects.iter().any(|x| b_trig.objects.contains(x)) {
            1.0
        } else {
            0.0
        };

        vec![
            verb_sim,
            obj_sim,
            synonym,
            hypernym,
            meronym,
            holonym,
            sentence_sim,
            channel_match,
            polarity_agreement,
            state_sim,
            location_match,
            device_exact_match,
        ]
    }
}

impl Default for PairFeatureExtractor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;

    #[test]
    fn feature_vector_has_declared_dim() {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(16);
        let a = parse_rule("Turn on the heater when it is cold", &lex);
        let b = parse_rule("Start the fan if temperature is high", &lex);
        let f = ex.pair_features(&a, &b, &lex);
        assert_eq!(f.len(), PAIR_FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn matching_pair_scores_higher_than_unrelated() {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(32);
        // A's action (turn on water valve) matches B's trigger (water valve on).
        let a = parse_rule("Turn on the water valve if smoke is detected", &lex);
        let b = parse_rule("Send a notification when the water valve is on", &lex);
        // C's trigger is about a completely different device/channel.
        let c = parse_rule("Lock the door when the camera is off", &lex);
        let f_match = ex.pair_features(&a, &b, &lex);
        let f_unrel = ex.pair_features(&a, &c, &lex);
        let score = |f: &[f64]| f[1] + f[2] + f[6] + f[7]; // obj sim + synonym + sentence + channel
        assert!(
            score(&f_match) > score(&f_unrel),
            "match {:?} vs unrelated {:?}",
            f_match,
            f_unrel
        );
    }

    #[test]
    fn synonym_flag_fires() {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(16);
        let a = parse_rule("Turn on the lamp when motion is detected", &lex);
        let b = parse_rule("Close the blinds if the bulb is on", &lex);
        let f = ex.pair_features(&a, &b, &lex);
        assert_eq!(f[2], 1.0, "lamp/bulb share a synset");
    }

    #[test]
    fn channel_match_via_physical_effect() {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(16);
        // heater (temperature channel) -> temperature trigger.
        let a = parse_rule("Turn on the heater when the user arrives", &lex);
        let b = parse_rule("Open the window if temperature is high", &lex);
        let f = ex.pair_features(&a, &b, &lex);
        assert_eq!(
            f[7], 1.0,
            "heater should link to temperature trigger: {f:?}"
        );
    }

    #[test]
    fn polarity_opposition_detected() {
        let lex = Lexicon::new();
        let ex = PairFeatureExtractor::with_word_dim(16);
        let a = parse_rule("Turn off the lights when everyone leaves", &lex);
        let b = parse_rule("Lock the door when the lights are on", &lex);
        let f = ex.pair_features(&a, &b, &lex);
        assert_eq!(f[8], -1.0, "off vs on should oppose: {f:?}");
    }
}
