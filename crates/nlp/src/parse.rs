//! Shallow dependency-style parsing of automation rules.
//!
//! Mirrors §III-A1: split a rule sentence into its *trigger* and *action*
//! clauses, then extract the root verbs, device objects, state words, and
//! locations of each clause. Named locations are kept separately and excluded
//! from the object list (the paper eliminates named entities because the same
//! entity might modify two distinct objects).

use crate::lexicon::{Lexicon, PosTag, SemanticClass};
use crate::tokenize::{analyze, Token};

/// One clause (trigger or action) with its extracted linguistic elements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clause {
    /// The clause's tokens, in order.
    pub tokens: Vec<String>,
    /// Main verbs (root verb first).
    pub verbs: Vec<String>,
    /// Device / sensor / channel nouns acting as objects or subjects.
    pub objects: Vec<String>,
    /// State adjectives ("on", "locked", "wet").
    pub states: Vec<String>,
    /// Location nouns (named entities, excluded from `objects`).
    pub locations: Vec<String>,
}

/// A parsed trigger-action rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleParse {
    pub trigger: Clause,
    pub action: Clause,
}

/// Parses a rule description into trigger and action clauses.
///
/// The splitter understands the dominant phrasings in the five platforms'
/// corpora: `<action> if/when/while <trigger>`, `if/when <trigger>, <action>`,
/// and `if/when <trigger> then <action>`. A sentence with no conditional
/// marker is treated as action-only (common for voice-assistant commands).
pub fn parse_rule(text: &str, lex: &Lexicon) -> RuleParse {
    let tokens = analyze(text, lex);
    let marker = tokens
        .iter()
        .position(|t| matches!(t.text.as_str(), "if" | "when" | "while"));

    let (trigger_toks, action_toks): (Vec<Token>, Vec<Token>) = match marker {
        Some(0) => {
            // "if <trigger> then <action>" or "if <trigger>, <action>".
            let rest = &tokens[1..];
            if let Some(then_pos) = rest.iter().position(|t| t.text == "then") {
                (rest[..then_pos].to_vec(), rest[then_pos + 1..].to_vec())
            } else if let Some(split) = clause_boundary(rest, lex) {
                (rest[..split].to_vec(), rest[split..].to_vec())
            } else {
                (rest.to_vec(), Vec::new())
            }
        }
        Some(pos) => {
            // "<action> if <trigger>".
            (tokens[pos + 1..].to_vec(), tokens[..pos].to_vec())
        }
        None => (Vec::new(), tokens),
    };

    RuleParse {
        trigger: extract_clause(&trigger_toks, lex),
        action: extract_clause(&action_toks, lex),
    }
}

/// For `if <trigger> <action...>` without an explicit "then": find the start
/// of the action clause — the first action verb after a sense/state pattern.
fn clause_boundary(tokens: &[Token], lex: &Lexicon) -> Option<usize> {
    let mut seen_content = false;
    for (i, t) in tokens.iter().enumerate() {
        let class = lex.get(&t.text).map(|e| e.class);
        if seen_content && i > 0 && class == Some(SemanticClass::ActionVerb) {
            return Some(i);
        }
        if matches!(
            class,
            Some(
                SemanticClass::Device
                    | SemanticClass::Sensor
                    | SemanticClass::Channel
                    | SemanticClass::State
            )
        ) || matches!(class, Some(SemanticClass::SenseVerb))
        {
            seen_content = true;
        }
    }
    None
}

fn extract_clause(tokens: &[Token], lex: &Lexicon) -> Clause {
    let mut clause = Clause::default();
    for t in tokens {
        clause.tokens.push(t.text.clone());
        match lex.get(&t.text).map(|e| e.class) {
            Some(SemanticClass::ActionVerb) | Some(SemanticClass::SenseVerb) => {
                clause.verbs.push(t.text.clone());
            }
            Some(SemanticClass::Device)
            | Some(SemanticClass::Sensor)
            | Some(SemanticClass::Channel) => {
                clause.objects.push(t.text.clone());
            }
            Some(SemanticClass::State) => clause.states.push(t.text.clone()),
            Some(SemanticClass::Location) => clause.locations.push(t.text.clone()),
            _ => {
                // Unknown nouns may still be objects (e.g. crawled app jargon).
                if t.pos == PosTag::Noun && lex.get(&t.text).is_none() {
                    clause.objects.push(t.text.clone());
                }
            }
        }
    }
    clause
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicon {
        Lexicon::new()
    }

    #[test]
    fn parses_action_if_trigger() {
        let r = parse_rule("Close the water valve if a water leak is detected", &lex());
        assert_eq!(r.action.verbs, vec!["close"]);
        assert_eq!(r.action.objects, vec!["water_valve"]);
        assert_eq!(r.trigger.objects, vec!["water_leak"]);
        assert!(r.trigger.verbs.contains(&"detect".to_string()));
    }

    #[test]
    fn parses_if_trigger_then_action() {
        let r = parse_rule(
            "If smoke is detected then unlock the door and start the fan",
            &lex(),
        );
        assert_eq!(r.trigger.objects, vec!["smoke"]);
        assert_eq!(r.action.verbs, vec!["unlock", "start"]);
        assert_eq!(r.action.objects, vec!["door", "fan"]);
    }

    #[test]
    fn parses_when_trigger_comma_action() {
        let r = parse_rule("When motion is detected turn the lights on", &lex());
        assert_eq!(r.trigger.objects, vec!["motion"]);
        assert!(r.action.verbs.contains(&"turn".to_string()));
        assert_eq!(r.action.objects, vec!["light"]);
        assert_eq!(r.action.states, vec!["on"]);
    }

    #[test]
    fn locations_excluded_from_objects() {
        let r = parse_rule("Turn on the kitchen light when motion is detected", &lex());
        assert_eq!(r.action.locations, vec!["kitchen"]);
        assert!(!r.action.objects.contains(&"kitchen".to_string()));
        assert!(r.action.objects.contains(&"light".to_string()));
    }

    #[test]
    fn command_without_trigger_is_action_only() {
        let r = parse_rule("Alexa, turn on the heater", &lex());
        assert!(r.trigger.tokens.is_empty());
        assert_eq!(r.action.objects, vec!["heater"]);
        assert_eq!(r.action.states, vec!["on"]);
    }

    #[test]
    fn states_extracted() {
        let r = parse_rule(
            "Lock the front door when the living room lights are on",
            &lex(),
        );
        assert_eq!(r.trigger.states, vec!["on"]);
        assert_eq!(r.action.verbs, vec!["lock"]);
        assert!(r.trigger.locations.contains(&"living_room".to_string()));
    }
}
