//! Closed-world IoT lexicon.
//!
//! The paper relies on spaCy's general-English model plus WordNet-style
//! lexical relations (synonym / hypernym / meronym / holonym) to compute the
//! causal-relation features of §III-A1. Smart-home rule language is a narrow
//! domain, so we substitute a curated lexicon covering the device, action,
//! state, and environment vocabulary that the five platforms' rule corpora
//! use, together with the lexical relations the feature extractor consults.

use std::collections::HashMap;

/// Part-of-speech tags (a compact subset of the Universal POS tag set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    Noun,
    Verb,
    Adjective,
    Adverb,
    Determiner,
    Preposition,
    Pronoun,
    Conjunction,
    Number,
    Particle,
    Other,
}

/// Coarse semantic class of a lexicon word; drives the structured part of the
/// word embeddings so that related words land near each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticClass {
    /// Actuating device ("light", "valve", "lock").
    Device,
    /// Sensing device ("sensor", "detector").
    Sensor,
    /// Command / action verb ("turn", "open", "notify").
    ActionVerb,
    /// Perception verb ("detect", "sense").
    SenseVerb,
    /// Device or environment state ("on", "locked", "wet").
    State,
    /// Physical channel ("temperature", "smoke", "motion").
    Channel,
    /// Location ("kitchen", "garage").
    Location,
    /// Anything else.
    General,
}

/// One lexicon entry.
#[derive(Debug, Clone)]
pub struct LexEntry {
    pub pos: PosTag,
    pub class: SemanticClass,
    /// Synonym-set id; words sharing a synset are interchangeable.
    pub synset: Option<usize>,
    /// Hypernym (is-a parent), e.g. "lamp" -> "device".
    pub hypernym: Option<&'static str>,
    /// Holonym (whole this word is part of), e.g. "kitchen" -> "house".
    pub holonym: Option<&'static str>,
    /// Polarity for state/action words: +1 activating, -1 deactivating, 0 neutral.
    pub polarity: i8,
    /// Physical channel this word is semantically bound to, if any.
    pub channel: Option<&'static str>,
}

/// The IoT domain lexicon: word metadata plus lexical-relation queries.
pub struct Lexicon {
    entries: HashMap<&'static str, LexEntry>,
    /// Known two-word collocations merged into single tokens at tokenization
    /// time, e.g. ("water", "valve") -> "water_valve".
    collocations: HashMap<(&'static str, &'static str), &'static str>,
}

/// Builder row: (word, pos, class, synset, hypernym, holonym, polarity, channel).
type Row = (
    &'static str,
    PosTag,
    SemanticClass,
    Option<usize>,
    Option<&'static str>,
    Option<&'static str>,
    i8,
    Option<&'static str>,
);

impl Lexicon {
    /// Builds the full smart-home lexicon. Cheap enough to construct on demand;
    /// share one instance per pipeline where convenient.
    pub fn new() -> Self {
        use PosTag::*;
        use SemanticClass::*;
        // Synset ids:
        // 0: start-like verbs   1: stop-like verbs     2: enable-like verbs
        // 3: disable-like verbs 4: light-like nouns    5: detect-like verbs
        // 6: notify-like verbs  7: open-like verbs     8: close-like verbs
        // 9: plug-like nouns   10: hot-like states    11: cold-like states
        // 12: on-like states   13: off-like states    14: record-like verbs
        const ROWS: &[Row] = &[
            // ------------------------------------------------ actuator devices
            (
                "light",
                Noun,
                Device,
                Some(4),
                Some("device"),
                Some("room"),
                0,
                Some("illuminance"),
            ),
            (
                "lamp",
                Noun,
                Device,
                Some(4),
                Some("device"),
                Some("room"),
                0,
                Some("illuminance"),
            ),
            (
                "bulb",
                Noun,
                Device,
                Some(4),
                Some("device"),
                Some("room"),
                0,
                Some("illuminance"),
            ),
            (
                "switch",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("power"),
            ),
            (
                "plug",
                Noun,
                Device,
                Some(9),
                Some("device"),
                Some("room"),
                0,
                Some("power"),
            ),
            (
                "outlet",
                Noun,
                Device,
                Some(9),
                Some("device"),
                Some("room"),
                0,
                Some("power"),
            ),
            (
                "camera",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                None,
            ),
            (
                "door",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                None,
            ),
            (
                "lock",
                Noun,
                Device,
                None,
                Some("device"),
                Some("door"),
                0,
                None,
            ),
            (
                "window",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                None,
            ),
            (
                "blind",
                Noun,
                Device,
                None,
                Some("device"),
                Some("window"),
                0,
                Some("illuminance"),
            ),
            (
                "shade",
                Noun,
                Device,
                None,
                Some("device"),
                Some("window"),
                0,
                Some("illuminance"),
            ),
            (
                "curtain",
                Noun,
                Device,
                None,
                Some("device"),
                Some("window"),
                0,
                Some("illuminance"),
            ),
            (
                "thermostat",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("temperature"),
            ),
            (
                "heater",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("temperature"),
            ),
            (
                "air_conditioner",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("temperature"),
            ),
            (
                "fan",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("temperature"),
            ),
            (
                "humidifier",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("humidity"),
            ),
            (
                "dehumidifier",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("humidity"),
            ),
            (
                "water_valve",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("water"),
            ),
            (
                "valve",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("water"),
            ),
            (
                "sprinkler",
                Noun,
                Device,
                None,
                Some("device"),
                Some("garden"),
                0,
                Some("water"),
            ),
            (
                "faucet",
                Noun,
                Device,
                None,
                Some("device"),
                Some("kitchen"),
                0,
                Some("water"),
            ),
            (
                "alarm",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("sound"),
            ),
            (
                "siren",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("sound"),
            ),
            (
                "speaker",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("sound"),
            ),
            (
                "tv",
                Noun,
                Device,
                None,
                Some("device"),
                Some("room"),
                0,
                Some("sound"),
            ),
            (
                "oven",
                Noun,
                Device,
                None,
                Some("device"),
                Some("kitchen"),
                0,
                Some("temperature"),
            ),
            (
                "stove",
                Noun,
                Device,
                None,
                Some("device"),
                Some("kitchen"),
                0,
                Some("temperature"),
            ),
            (
                "coffee_maker",
                Noun,
                Device,
                None,
                Some("device"),
                Some("kitchen"),
                0,
                None,
            ),
            (
                "washer",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("water"),
            ),
            (
                "dryer",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("temperature"),
            ),
            (
                "vacuum",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("sound"),
            ),
            (
                "doorbell",
                Noun,
                Device,
                None,
                Some("device"),
                Some("door"),
                0,
                Some("sound"),
            ),
            (
                "garage_door",
                Noun,
                Device,
                None,
                Some("device"),
                Some("garage"),
                0,
                None,
            ),
            (
                "heating",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("temperature"),
            ),
            (
                "ventilation",
                Noun,
                Device,
                None,
                Some("device"),
                Some("house"),
                0,
                Some("humidity"),
            ),
            ("device", Noun, Device, None, None, Some("house"), 0, None),
            // ------------------------------------------------------- sensors
            (
                "sensor",
                Noun,
                Sensor,
                None,
                Some("device"),
                Some("room"),
                0,
                None,
            ),
            (
                "detector",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("room"),
                0,
                None,
            ),
            (
                "motion_sensor",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("room"),
                0,
                Some("motion"),
            ),
            (
                "contact_sensor",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("door"),
                0,
                None,
            ),
            (
                "smoke_detector",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("room"),
                0,
                Some("smoke"),
            ),
            (
                "co_detector",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("room"),
                0,
                Some("co"),
            ),
            (
                "leak_sensor",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("kitchen"),
                0,
                Some("water"),
            ),
            (
                "presence_sensor",
                Noun,
                Sensor,
                None,
                Some("sensor"),
                Some("house"),
                0,
                Some("motion"),
            ),
            (
                "button",
                Noun,
                Sensor,
                None,
                Some("device"),
                Some("room"),
                0,
                None,
            ),
            // ------------------------------------------------ channel nouns
            ("motion", Noun, Channel, None, None, None, 0, Some("motion")),
            (
                "smoke",
                Noun,
                Channel,
                None,
                Some("hazard"),
                None,
                0,
                Some("smoke"),
            ),
            (
                "co",
                Noun,
                Channel,
                None,
                Some("hazard"),
                None,
                0,
                Some("co"),
            ),
            (
                "fire",
                Noun,
                Channel,
                None,
                Some("hazard"),
                None,
                0,
                Some("smoke"),
            ),
            (
                "temperature",
                Noun,
                Channel,
                None,
                None,
                None,
                0,
                Some("temperature"),
            ),
            (
                "humidity",
                Noun,
                Channel,
                None,
                None,
                None,
                0,
                Some("humidity"),
            ),
            (
                "illuminance",
                Noun,
                Channel,
                None,
                None,
                None,
                0,
                Some("illuminance"),
            ),
            (
                "brightness",
                Noun,
                Channel,
                None,
                None,
                None,
                0,
                Some("illuminance"),
            ),
            ("sound", Noun, Channel, None, None, None, 0, Some("sound")),
            ("noise", Noun, Channel, None, None, None, 0, Some("sound")),
            ("water", Noun, Channel, None, None, None, 0, Some("water")),
            (
                "leak",
                Noun,
                Channel,
                None,
                Some("hazard"),
                None,
                0,
                Some("water"),
            ),
            ("power", Noun, Channel, None, None, None, 0, Some("power")),
            ("energy", Noun, Channel, None, None, None, 0, Some("power")),
            (
                "presence",
                Noun,
                Channel,
                None,
                None,
                None,
                0,
                Some("motion"),
            ),
            ("hazard", Noun, Channel, None, None, None, 0, None),
            // ---------------------------------------------------- locations
            ("home", Noun, Location, None, None, None, 0, None),
            ("house", Noun, Location, None, Some("home"), None, 0, None),
            ("room", Noun, Location, None, None, Some("house"), 0, None),
            (
                "kitchen",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            (
                "bedroom",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            (
                "bathroom",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            (
                "living_room",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            (
                "hallway",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            (
                "garage",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            ("garden", Noun, Location, None, None, Some("house"), 0, None),
            (
                "basement",
                Noun,
                Location,
                None,
                Some("room"),
                Some("house"),
                0,
                None,
            ),
            // -------------------------------------------------- action verbs
            ("turn", Verb, ActionVerb, None, None, None, 0, None),
            ("switch", Verb, ActionVerb, None, None, None, 0, None),
            ("set", Verb, ActionVerb, None, None, None, 0, None),
            ("adjust", Verb, ActionVerb, None, None, None, 0, None),
            ("open", Verb, ActionVerb, Some(7), None, None, 1, None),
            ("unlock", Verb, ActionVerb, Some(7), None, None, 1, None),
            ("raise", Verb, ActionVerb, Some(7), None, None, 1, None),
            ("close", Verb, ActionVerb, Some(8), None, None, -1, None),
            ("shut", Verb, ActionVerb, Some(8), None, None, -1, None),
            ("lock", Verb, ActionVerb, Some(8), None, None, -1, None),
            ("lower", Verb, ActionVerb, Some(8), None, None, -1, None),
            ("start", Verb, ActionVerb, Some(0), None, None, 1, None),
            ("begin", Verb, ActionVerb, Some(0), None, None, 1, None),
            ("run", Verb, ActionVerb, Some(0), None, None, 1, None),
            ("launch", Verb, ActionVerb, Some(0), None, None, 1, None),
            ("stop", Verb, ActionVerb, Some(1), None, None, -1, None),
            ("halt", Verb, ActionVerb, Some(1), None, None, -1, None),
            ("pause", Verb, ActionVerb, Some(1), None, None, -1, None),
            ("enable", Verb, ActionVerb, Some(2), None, None, 1, None),
            ("activate", Verb, ActionVerb, Some(2), None, None, 1, None),
            ("arm", Verb, ActionVerb, Some(2), None, None, 1, None),
            ("disable", Verb, ActionVerb, Some(3), None, None, -1, None),
            (
                "deactivate",
                Verb,
                ActionVerb,
                Some(3),
                None,
                None,
                -1,
                None,
            ),
            ("disarm", Verb, ActionVerb, Some(3), None, None, -1, None),
            (
                "dim",
                Verb,
                ActionVerb,
                None,
                None,
                None,
                -1,
                Some("illuminance"),
            ),
            (
                "brighten",
                Verb,
                ActionVerb,
                None,
                None,
                None,
                1,
                Some("illuminance"),
            ),
            ("notify", Verb, ActionVerb, Some(6), None, None, 0, None),
            ("alert", Verb, ActionVerb, Some(6), None, None, 0, None),
            ("send", Verb, ActionVerb, Some(6), None, None, 0, None),
            ("text", Verb, ActionVerb, Some(6), None, None, 0, None),
            ("record", Verb, ActionVerb, Some(14), None, None, 0, None),
            ("log", Verb, ActionVerb, Some(14), None, None, 0, None),
            ("beep", Verb, ActionVerb, None, None, None, 1, Some("sound")),
            ("tap", Verb, ActionVerb, None, None, None, 0, None),
            ("connect", Verb, ActionVerb, None, None, None, 1, None),
            // ------------------------------------------------- sense verbs
            ("detect", Verb, SenseVerb, Some(5), None, None, 0, None),
            ("sense", Verb, SenseVerb, Some(5), None, None, 0, None),
            ("observe", Verb, SenseVerb, Some(5), None, None, 0, None),
            ("report", Verb, SenseVerb, None, None, None, 0, None),
            ("reach", Verb, SenseVerb, None, None, None, 0, None),
            ("exceed", Verb, SenseVerb, None, None, None, 0, None),
            ("drop", Verb, SenseVerb, None, None, None, 0, None),
            ("rise", Verb, SenseVerb, None, None, None, 0, None),
            ("arrive", Verb, SenseVerb, None, None, None, 0, None),
            ("leave", Verb, SenseVerb, None, None, None, 0, None),
            // ------------------------------------------------------- states
            (
                "on",
                Adjective,
                State,
                Some(12),
                None,
                None,
                1,
                Some("power"),
            ),
            (
                "off",
                Adjective,
                State,
                Some(13),
                None,
                None,
                -1,
                Some("power"),
            ),
            ("active", Adjective, State, Some(12), None, None, 1, None),
            ("inactive", Adjective, State, Some(13), None, None, -1, None),
            ("opened", Adjective, State, None, None, None, 1, None),
            ("closed", Adjective, State, None, None, None, -1, None),
            ("locked", Adjective, State, None, None, None, -1, None),
            ("unlocked", Adjective, State, None, None, None, 1, None),
            (
                "hot",
                Adjective,
                State,
                Some(10),
                None,
                None,
                1,
                Some("temperature"),
            ),
            (
                "warm",
                Adjective,
                State,
                Some(10),
                None,
                None,
                1,
                Some("temperature"),
            ),
            (
                "cold",
                Adjective,
                State,
                Some(11),
                None,
                None,
                -1,
                Some("temperature"),
            ),
            (
                "cool",
                Adjective,
                State,
                Some(11),
                None,
                None,
                -1,
                Some("temperature"),
            ),
            ("high", Adjective, State, None, None, None, 1, None),
            ("low", Adjective, State, None, None, None, -1, None),
            ("wet", Adjective, State, None, None, None, 1, Some("water")),
            ("dry", Adjective, State, None, None, None, -1, Some("water")),
            (
                "bright",
                Adjective,
                State,
                None,
                None,
                None,
                1,
                Some("illuminance"),
            ),
            (
                "dark",
                Adjective,
                State,
                None,
                None,
                None,
                -1,
                Some("illuminance"),
            ),
            (
                "present",
                Adjective,
                State,
                None,
                None,
                None,
                1,
                Some("motion"),
            ),
            (
                "away",
                Adjective,
                State,
                None,
                None,
                None,
                -1,
                Some("motion"),
            ),
            // --------------------------------------------------- function words
            ("the", Determiner, General, None, None, None, 0, None),
            ("a", Determiner, General, None, None, None, 0, None),
            ("an", Determiner, General, None, None, None, 0, None),
            ("all", Determiner, General, None, None, None, 0, None),
            ("any", Determiner, General, None, None, None, 0, None),
            ("if", Conjunction, General, None, None, None, 0, None),
            ("when", Conjunction, General, None, None, None, 0, None),
            ("while", Conjunction, General, None, None, None, 0, None),
            ("then", Conjunction, General, None, None, None, 0, None),
            ("and", Conjunction, General, None, None, None, 0, None),
            ("or", Conjunction, General, None, None, None, 0, None),
            ("in", Preposition, General, None, None, None, 0, None),
            ("on_prep", Preposition, General, None, None, None, 0, None),
            ("at", Preposition, General, None, None, None, 0, None),
            ("to", Preposition, General, None, None, None, 0, None),
            ("of", Preposition, General, None, None, None, 0, None),
            ("is", Verb, General, None, None, None, 0, None),
            ("are", Verb, General, None, None, None, 0, None),
            ("gets", Verb, General, None, None, None, 0, None),
            ("me", Pronoun, General, None, None, None, 0, None),
            ("my", Pronoun, General, None, None, None, 0, None),
            ("user", Noun, General, None, None, None, 0, None),
            ("it", Pronoun, General, None, None, None, 0, None),
            ("alexa", Noun, General, None, None, None, 0, None),
            ("wifi", Noun, General, None, None, None, 0, None),
            ("notification", Noun, General, None, None, None, 0, None),
            ("message", Noun, General, None, None, None, 0, None),
            ("spreadsheet", Noun, General, None, None, None, 0, None),
            ("mode", Noun, General, None, None, None, 0, None),
        ];

        let mut entries = HashMap::with_capacity(ROWS.len());
        for &(word, pos, class, synset, hyper, holo, polarity, channel) in ROWS {
            entries.insert(
                word,
                LexEntry {
                    pos,
                    class,
                    synset,
                    hypernym: hyper,
                    holonym: holo,
                    polarity,
                    channel,
                },
            );
        }

        let mut collocations = HashMap::new();
        for &(a, b, merged) in &[
            ("water", "valve", "water_valve"),
            ("air", "conditioner", "air_conditioner"),
            ("garage", "door", "garage_door"),
            ("living", "room", "living_room"),
            ("motion", "sensor", "motion_sensor"),
            ("contact", "sensor", "contact_sensor"),
            ("smoke", "detector", "smoke_detector"),
            ("smoke", "alarm", "smoke_detector"),
            ("co", "detector", "co_detector"),
            ("leak", "sensor", "leak_sensor"),
            ("water_leak", "sensor", "leak_sensor"),
            ("water", "leak", "water_leak"),
            ("presence", "sensor", "presence_sensor"),
            ("coffee", "maker", "coffee_maker"),
        ] {
            collocations.insert((a, b), merged);
        }
        // "water_leak" itself needs an entry (merged twice: water leak sensor).
        entries.insert(
            "water_leak",
            LexEntry {
                pos: PosTag::Noun,
                class: SemanticClass::Channel,
                synset: None,
                hypernym: Some("hazard"),
                holonym: None,
                polarity: 0,
                channel: Some("water"),
            },
        );

        Self {
            entries,
            collocations,
        }
    }

    /// Looks a word up; `None` for out-of-vocabulary words.
    pub fn get(&self, word: &str) -> Option<&LexEntry> {
        self.entries.get(word)
    }

    /// Attempts to merge the bigram `(a, b)` into a known collocation token.
    pub fn merge_collocation(&self, a: &str, b: &str) -> Option<&'static str> {
        self.collocations
            .get(&(leak_static(a)?, leak_static(b)?))
            .copied()
    }

    /// All known vocabulary words (for corpus generation and tests).
    pub fn words(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.keys().copied()
    }

    /// True if the two words share a synset.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        match (
            self.get(a).and_then(|e| e.synset),
            self.get(b).and_then(|e| e.synset),
        ) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// True if `a` is a hyponym of `b` (i.e. `b` is a hypernym of `a`),
    /// following the hypernym chain transitively.
    pub fn is_hypernym(&self, a: &str, b: &str) -> bool {
        let mut cur = a;
        for _ in 0..8 {
            match self.get(cur).and_then(|e| e.hypernym) {
                Some(h) if h == b => return true,
                Some(h) => cur = h,
                None => return false,
            }
        }
        false
    }

    /// True if `a` is a meronym of `b` (a is part of b), via the holonym link.
    pub fn is_meronym(&self, a: &str, b: &str) -> bool {
        let mut cur = a;
        for _ in 0..8 {
            match self.get(cur).and_then(|e| e.holonym) {
                Some(h) if h == b => return true,
                Some(h) => cur = h,
                None => return false,
            }
        }
        false
    }

    /// True if `a` is a holonym of `b` (b is part of a).
    pub fn is_holonym(&self, a: &str, b: &str) -> bool {
        self.is_meronym(b, a)
    }

    /// The physical channel a word is bound to, if any.
    pub fn channel_of(&self, word: &str) -> Option<&'static str> {
        self.get(word).and_then(|e| e.channel)
    }

    /// Polarity of a word (+1 activating, -1 deactivating, 0 neutral/unknown).
    pub fn polarity(&self, word: &str) -> i8 {
        self.get(word).map_or(0, |e| e.polarity)
    }
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a borrowed `&str` back to the `'static` key used in the collocation
/// table. Only words already present in the table resolve.
fn leak_static(s: &str) -> Option<&'static str> {
    // The collocation table is small; linear scan over its keys.
    const KEYS: &[&str] = &[
        "water",
        "valve",
        "air",
        "conditioner",
        "garage",
        "door",
        "living",
        "room",
        "motion",
        "sensor",
        "contact",
        "smoke",
        "detector",
        "alarm",
        "co",
        "leak",
        "water_leak",
        "presence",
        "coffee",
        "maker",
    ];
    KEYS.iter().find(|&&k| k == s).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_basic_words() {
        let lex = Lexicon::new();
        assert_eq!(lex.get("light").unwrap().pos, PosTag::Noun);
        assert_eq!(lex.get("turn").unwrap().pos, PosTag::Verb);
        assert!(lex.get("zzz_unknown").is_none());
    }

    #[test]
    fn synonyms_symmetric() {
        let lex = Lexicon::new();
        assert!(lex.are_synonyms("start", "begin"));
        assert!(lex.are_synonyms("begin", "start"));
        assert!(lex.are_synonyms("lamp", "bulb"));
        assert!(!lex.are_synonyms("start", "stop"));
        assert!(lex.are_synonyms("light", "light"));
    }

    #[test]
    fn hypernym_transitive() {
        let lex = Lexicon::new();
        assert!(lex.is_hypernym("lamp", "device"));
        assert!(
            lex.is_hypernym("motion_sensor", "device"),
            "sensor -> device chain"
        );
        assert!(!lex.is_hypernym("device", "lamp"));
    }

    #[test]
    fn meronym_holonym_inverse() {
        let lex = Lexicon::new();
        assert!(lex.is_meronym("kitchen", "house"));
        assert!(lex.is_holonym("house", "kitchen"));
        assert!(!lex.is_meronym("house", "kitchen"));
    }

    #[test]
    fn collocations_merge() {
        let lex = Lexicon::new();
        assert_eq!(lex.merge_collocation("water", "valve"), Some("water_valve"));
        assert_eq!(
            lex.merge_collocation("air", "conditioner"),
            Some("air_conditioner")
        );
        assert_eq!(lex.merge_collocation("water", "door"), None);
    }

    #[test]
    fn channels_and_polarity() {
        let lex = Lexicon::new();
        assert_eq!(lex.channel_of("heater"), Some("temperature"));
        assert_eq!(lex.channel_of("smoke"), Some("smoke"));
        assert_eq!(lex.polarity("on"), 1);
        assert_eq!(lex.polarity("off"), -1);
        assert_eq!(lex.polarity("the"), 0);
    }

    #[test]
    fn open_close_are_antonym_synsets() {
        let lex = Lexicon::new();
        assert!(lex.are_synonyms("open", "unlock"));
        assert!(lex.are_synonyms("close", "lock"));
        assert!(!lex.are_synonyms("open", "close"));
        assert_eq!(lex.polarity("open") * lex.polarity("close"), -1);
    }
}
