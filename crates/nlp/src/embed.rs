//! Word and sentence embeddings.
//!
//! Substitutes spaCy's 300-d `en_core_web_lg` vectors and the 512-d Universal
//! Sentence Encoder (paper §IV-A). Vectors are deterministic functions of the
//! word: a hash-seeded random base direction plus *structured* components
//! shared by words with the same synset, semantic class, physical channel, and
//! polarity. Relatedness in the lexicon therefore maps to cosine similarity in
//! embedding space — the only property the downstream classifiers and GNNs
//! rely on.

use crate::lexicon::Lexicon;
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Dimensionality of word embeddings (matches spaCy's 300).
pub const WORD_DIM: usize = 300;
/// Dimensionality of sentence embeddings (matches USE's 512).
pub const SENTENCE_DIM: usize = 512;

/// FNV-1a hash for deterministic per-string seeding.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn seeded_unit_vector(seed: u64, dim: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..dim).map(|_| rng.standard_normal()).collect();
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f64]) {
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn add_scaled(acc: &mut [f64], v: &[f64], s: f64) {
    for (a, b) in acc.iter_mut().zip(v) {
        *a += s * b;
    }
}

/// Deterministic word embedder with lexicon-aware structure.
pub struct WordEmbedder {
    dim: usize,
}

impl WordEmbedder {
    pub fn new() -> Self {
        Self { dim: WORD_DIM }
    }

    /// An embedder with a custom dimensionality (scaled-down experiments).
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim >= 4, "embedding dim too small");
        Self { dim }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds one word. Unit-norm output.
    ///
    /// Composition: `0.45 * base(word | synset)` + `0.55 * class` +
    /// `0.6 * channel` + `0.3 * polarity * polarity_axis`, normalized.
    /// Words in the same synset share their base direction entirely, so
    /// synonyms are near-identical; words sharing a channel or class are
    /// moderately close; unrelated words are near-orthogonal.
    pub fn embed(&self, word: &str, lex: &Lexicon) -> Vec<f64> {
        let entry = lex.get(word);
        // Synonyms share one base vector (keyed by synset id).
        let base_key = match entry.and_then(|e| e.synset) {
            Some(sid) => format!("synset#{sid}"),
            None => word.to_string(),
        };
        let mut v = seeded_unit_vector(fnv1a(&base_key), self.dim);
        for x in v.iter_mut() {
            *x *= 0.45;
        }
        if let Some(e) = entry {
            let class_vec = seeded_unit_vector(fnv1a(&format!("class#{:?}", e.class)), self.dim);
            add_scaled(&mut v, &class_vec, 0.55);
            if let Some(ch) = e.channel {
                let ch_vec = seeded_unit_vector(fnv1a(&format!("channel#{ch}")), self.dim);
                add_scaled(&mut v, &ch_vec, 0.6);
            }
            if e.polarity != 0 {
                let pol_vec = seeded_unit_vector(fnv1a("axis#polarity"), self.dim);
                add_scaled(&mut v, &pol_vec, 0.3 * e.polarity as f64);
            }
        }
        normalize(&mut v);
        v
    }

    /// Embeds a token sequence as a matrix with one word vector per row.
    pub fn embed_sequence(&self, words: &[String], lex: &Lexicon) -> Matrix {
        let mut out = Matrix::zeros(words.len(), self.dim);
        for (i, w) in words.iter().enumerate() {
            out.row_mut(i).copy_from_slice(&self.embed(w, lex));
        }
        out
    }

    /// Mean of the word vectors (zero vector for empty input).
    pub fn embed_mean(&self, words: &[String], lex: &Lexicon) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        if words.is_empty() {
            return acc;
        }
        for w in words {
            add_scaled(&mut acc, &self.embed(w, lex), 1.0);
        }
        let inv = 1.0 / words.len() as f64;
        for x in &mut acc {
            *x *= inv;
        }
        acc
    }

    /// Trigger-action pair embedding per Eq. (1): mean of the trigger-word
    /// embeddings plus mean of the action-word embeddings.
    pub fn pair_embedding(&self, trigger: &[String], action: &[String], lex: &Lexicon) -> Vec<f64> {
        let t = self.embed_mean(trigger, lex);
        let a = self.embed_mean(action, lex);
        t.iter().zip(&a).map(|(x, y)| x + y).collect()
    }
}

impl Default for WordEmbedder {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentence encoder: position-mixed bag of word embeddings projected to
/// [`SENTENCE_DIM`] (the Universal Sentence Encoder stand-in).
pub struct SentenceEncoder {
    words: WordEmbedder,
    dim: usize,
}

impl SentenceEncoder {
    pub fn new() -> Self {
        Self {
            words: WordEmbedder::new(),
            dim: SENTENCE_DIM,
        }
    }

    pub fn with_dims(word_dim: usize, sentence_dim: usize) -> Self {
        Self {
            words: WordEmbedder::with_dim(word_dim),
            dim: sentence_dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a sentence into a unit-norm vector. Word order matters weakly:
    /// each word vector is cyclically shifted by its position before pooling,
    /// so "turn on the light" and "the light turn on" differ slightly while
    /// bag-of-words content dominates.
    pub fn encode(&self, words: &[String], lex: &Lexicon) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if words.is_empty() {
            return out;
        }
        let wdim = self.words.dim();
        for (pos, w) in words.iter().enumerate() {
            let e = self.words.embed(w, lex);
            // Project word-dim -> sentence-dim by tiling. The dominant term is
            // position-independent (bag of words); a small positionally-rotated
            // term makes word order matter weakly. Position decay keeps early
            // words (root verbs) most influential.
            let decay = 1.0 / (1.0 + 0.1 * pos as f64);
            for j in 0..self.dim {
                out[j] += decay * (e[j % wdim] + 0.15 * e[(j + pos) % wdim]);
            }
        }
        normalize(&mut out);
        out
    }
}

impl Default for SentenceEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Cosine similarity helper re-exported for feature code.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    fexiot_tensor::stats::cosine_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    fn s(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn embeddings_deterministic_and_unit_norm() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let a = emb.embed("light", &lex);
        let b = emb.embed("light", &lex);
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(a.len(), WORD_DIM);
    }

    #[test]
    fn synonyms_are_close_unrelated_are_far() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let lamp = emb.embed("lamp", &lex);
        let bulb = emb.embed("bulb", &lex);
        let start = emb.embed("start", &lex);
        let begin = emb.embed("begin", &lex);
        let sim_syn = cosine(&lamp, &bulb);
        let sim_verb_syn = cosine(&start, &begin);
        let sim_cross = cosine(&lamp, &start);
        assert!(sim_syn > 0.95, "lamp/bulb sim {sim_syn}");
        assert!(sim_verb_syn > 0.95, "start/begin sim {sim_verb_syn}");
        assert!(sim_cross < 0.5, "lamp/start sim {sim_cross}");
    }

    #[test]
    fn shared_channel_raises_similarity() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let heater = emb.embed("heater", &lex);
        let thermostat = emb.embed("thermostat", &lex);
        let speaker = emb.embed("speaker", &lex);
        assert!(cosine(&heater, &thermostat) > cosine(&heater, &speaker));
    }

    #[test]
    fn polarity_separates_on_off() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let on = emb.embed("on", &lex);
        let off = emb.embed("off", &lex);
        let active = emb.embed("active", &lex);
        assert!(
            cosine(&on, &active) > cosine(&on, &off),
            "polarity should separate on/off"
        );
    }

    #[test]
    fn oov_words_still_embed() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let v = emb.embed("frobnicator", &lex);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_embedding_is_sum_of_means() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let p = emb.pair_embedding(&s(&["smoke"]), &s(&["fan"]), &lex);
        let t = emb.embed("smoke", &lex);
        let a = emb.embed("fan", &lex);
        for i in 0..WORD_DIM {
            assert!((p[i] - (t[i] + a[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn sentence_encoder_orders_weakly() {
        let lex = Lexicon::new();
        let enc = SentenceEncoder::new();
        let a = enc.encode(&s(&["turn", "on", "the", "light"]), &lex);
        let b = enc.encode(&s(&["turn", "on", "the", "light"]), &lex);
        let c = enc.encode(&s(&["light", "the", "on", "turn"]), &lex);
        let d = enc.encode(&s(&["lock", "the", "door"]), &lex);
        assert_eq!(a, b);
        assert!(cosine(&a, &c) > 0.6, "reordering keeps content");
        assert!(cosine(&a, &c) < 0.999999, "order still matters a little");
        assert!(cosine(&a, &d) < cosine(&a, &c));
        assert_eq!(a.len(), SENTENCE_DIM);
    }

    #[test]
    fn empty_inputs_are_zero_vectors() {
        let lex = Lexicon::new();
        let emb = WordEmbedder::new();
        let enc = SentenceEncoder::new();
        assert!(emb.embed_mean(&[], &lex).iter().all(|&x| x == 0.0));
        assert!(enc.encode(&[], &lex).iter().all(|&x| x == 0.0));
    }
}
