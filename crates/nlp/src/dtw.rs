//! Dynamic time warping over embedding sequences.
//!
//! §III-A1: when two rules have different numbers of verb or object elements,
//! the paper aligns the embedding sequences with DTW and uses the warped
//! distance as the similarity feature. Cost between elements is cosine
//! distance (`1 - cos`).

use fexiot_tensor::matrix::Matrix;

/// DTW distance between two embedding sequences (one row per element) under
/// cosine distance, normalized by the warping-path length so values are
/// comparable across sequence lengths. Returns 0 when both sequences are
/// empty and 1 when exactly one is empty (maximally dissimilar).
pub fn dtw_distance(a: &Matrix, b: &Matrix) -> f64 {
    match (a.rows() == 0, b.rows() == 0) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    let (n, m) = (a.rows(), b.rows());
    const INF: f64 = f64::INFINITY;
    // dp[i][j] = (cost, path length); stored flat with two planes.
    let mut cost = vec![INF; (n + 1) * (m + 1)];
    let mut steps = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    cost[idx(0, 0)] = 0.0;

    for i in 1..=n {
        for j in 1..=m {
            let d = cosine_distance(a.row(i - 1), b.row(j - 1));
            let candidates = [(i - 1, j), (i, j - 1), (i - 1, j - 1)];
            let (pi, pj) = candidates
                .into_iter()
                .min_by(|&(x1, y1), &(x2, y2)| {
                    cost[idx(x1, y1)]
                        .partial_cmp(&cost[idx(x2, y2)])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty candidates");
            if cost[idx(pi, pj)].is_finite() {
                cost[idx(i, j)] = cost[idx(pi, pj)] + d;
                steps[idx(i, j)] = steps[idx(pi, pj)] + 1;
            }
        }
    }
    let total = cost[idx(n, m)];
    let len = steps[idx(n, m)].max(1) as f64;
    if total.is_finite() {
        total / len
    } else {
        1.0
    }
}

/// DTW similarity in `[0, 1]`: `1 - clamp(distance)`.
pub fn dtw_similarity(a: &Matrix, b: &Matrix) -> f64 {
    (1.0 - dtw_distance(a, b)).clamp(0.0, 1.0)
}

fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - fexiot_tensor::stats::cosine_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[&[f64]]) -> Matrix {
        let rows: Vec<Vec<f64>> = vals.iter().map(|v| v.to_vec()).collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = seq(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(dtw_distance(&a, &a) < 1e-12);
        assert!((dtw_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_sequences_are_far() {
        let a = seq(&[&[1.0, 0.0]]);
        let b = seq(&[&[-1.0, 0.0]]);
        assert!((dtw_distance(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(dtw_similarity(&a, &b), 0.0);
    }

    #[test]
    fn handles_different_lengths() {
        // Repeating an element should not change the normalized distance much.
        let a = seq(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = seq(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        assert!(dtw_distance(&a, &b) < 0.05, "dist {}", dtw_distance(&a, &b));
    }

    #[test]
    fn empty_cases() {
        let a = seq(&[&[1.0, 0.0]]);
        let empty = Matrix::zeros(0, 2);
        assert_eq!(dtw_distance(&empty, &empty), 0.0);
        assert_eq!(dtw_distance(&a, &empty), 1.0);
        assert_eq!(dtw_distance(&empty, &a), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = seq(&[&[1.0, 0.2], &[0.3, 1.0], &[0.5, 0.5]]);
        let b = seq(&[&[0.9, 0.1], &[0.2, 0.8]]);
        assert!((dtw_distance(&a, &b) - dtw_distance(&b, &a)).abs() < 1e-12);
    }
}
