//! # fexiot-nlp
//!
//! NLP substrate for the FexIoT reproduction (paper §III-A): a closed-world
//! IoT [`Lexicon`] with WordNet-style relations, tokenization + POS tagging,
//! shallow trigger/action rule parsing, deterministic structured word/sentence
//! embeddings (the spaCy / Universal Sentence Encoder stand-ins), dynamic time
//! warping, Jenks natural breaks, and the rule-pair correlation features that
//! feed the interaction-discovery classifiers.

pub mod dtw;
pub mod embed;
pub mod features;
pub mod jenks;
pub mod lexicon;
pub mod parse;
pub mod tokenize;

pub use embed::{SentenceEncoder, WordEmbedder, SENTENCE_DIM, WORD_DIM};
pub use features::{PairFeatureExtractor, PAIR_FEATURE_DIM, PAIR_FEATURE_NAMES};
pub use lexicon::{LexEntry, Lexicon, PosTag, SemanticClass};
pub use parse::{parse_rule, Clause, RuleParse};
