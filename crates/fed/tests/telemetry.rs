//! Fleet-health telemetry locks: the per-round hook must feed the
//! time-series store and SLO engine deterministically (same seed → byte
//! identical sections), surface failing rules in `RoundTelemetry`, and cost
//! nothing when no telemetry is attached.

use fexiot_fed::{Client, FaultPlan, FedConfig, FedSim, Sampling, Strategy};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_obs::{FleetTelemetry, SampleSpec, SloEngine, TimeSeriesStore};
use fexiot_tensor::rng::Rng;

fn small_sim(seed: u64, config_fn: impl FnOnce(&mut FedConfig)) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 12;
    let ds = generate_dataset(&cfg, &mut rng);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[8], 4, &mut rng);
    let clients = (0..12)
        .map(|i| {
            let graphs = vec![ds.graphs[i % ds.graphs.len()].clone()];
            Client::new(i, Encoder::Gin(template.clone()), GraphDataset::new(graphs))
        })
        .collect();
    let mut config = FedConfig {
        strategy: Strategy::FedAvg,
        rounds: 5,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 4,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    config_fn(&mut config);
    FedSim::new(clients, config)
}

/// A store with one snapshot-driven spec plus two rules: one that any
/// healthy run satisfies, one that no run can (losses are non-negative).
fn bundle() -> FleetTelemetry {
    let mut store = TimeSeriesStore::new(64);
    store
        .add_spec(SampleSpec::HistQuantile { name: "fed.round.loss".into(), q: 0.5 })
        .expect("deterministic spec");
    let rules = r#"
# cohort must never empty out
[[rule]]
name = "cohort-present"
metric = "fed.round.participants"
agg = "min"
op = ">="
threshold = 1

# deliberately impossible: max loss strictly below -1
[[rule]]
name = "impossible-loss"
metric = "fed.round.mean_loss"
agg = "max"
op = "<"
threshold = -1
"#;
    let engine = SloEngine::parse(rules).expect("rules parse");
    FleetTelemetry::new(store, Some(engine))
}

#[test]
fn round_hook_feeds_series_and_surfaces_slo_failures() {
    let mut sim = small_sim(42, |_| {});
    sim.attach_telemetry(bundle());
    let reports = sim.run();
    assert_eq!(reports.len(), 5);
    // The impossible rule fails from its first evaluation; the possible one
    // never does, so exactly one rule is failing at every round.
    for r in &reports {
        assert_eq!(r.faults.slo_failures, 1, "round {}: {:?}", r.round, r.faults);
    }

    let tel = sim.take_telemetry().expect("telemetry attached");
    assert!(tel.slo_failed(), "impossible rule must fail the run");
    let engine = tel.slo.as_ref().expect("engine present");
    let by_name = |n: &str| {
        engine
            .verdicts()
            .iter()
            .find(|v| v.rule.name == n)
            .unwrap_or_else(|| panic!("verdict {n}"))
    };
    assert_eq!(by_name("cohort-present").rounds_failed, 0);
    assert_eq!(by_name("impossible-loss").rounds_failed, 5);
    assert_eq!(by_name("impossible-loss").first_failed_round, Some(0));

    // Direct samples cover every RoundTelemetry field; rounds are the
    // 0-based indices of the 5 rounds.
    for name in [
        "fed.round.participants",
        "fed.round.dropped",
        "fed.round.mean_loss",
        "fed.round.comm_bytes",
        "fed.round.quorum_aborted",
    ] {
        let s = tel.store.series(name).unwrap_or_else(|| panic!("series {name}"));
        let rounds: Vec<u64> = s.rounds.iter().copied().collect();
        assert_eq!(rounds, [0, 1, 2, 3, 4], "series {name}");
    }
    // The snapshot-driven quantile spec sampled the loss histogram.
    assert!(tel.store.series("fed.round.loss.p50").is_some());
}

#[test]
fn same_seed_runs_produce_byte_identical_telemetry() {
    let run = || {
        let mut sim = small_sim(7, |c| {
            c.sampling = Sampling::FixedK(8);
            c.quorum = 0.5;
            c.faults = FaultPlan::none().with_seed(7).with_dropout(0.25);
        });
        sim.attach_telemetry(bundle());
        sim.run();
        let tel = sim.take_telemetry().expect("attached");
        let slo = tel.slo.as_ref().expect("engine").to_json().to_string();
        (tel.store.to_json().to_string(), slo)
    };
    let (ts_a, slo_a) = run();
    let (ts_b, slo_b) = run();
    assert_eq!(ts_a, ts_b, "time-series section must be byte-identical");
    assert_eq!(slo_a, slo_b, "slo section must be byte-identical");
}

#[test]
fn quorum_gate_exports_margin_gauge() {
    let mut sim = small_sim(11, |c| {
        c.quorum = 0.5;
        c.faults = FaultPlan::none().with_seed(11).with_dropout(0.25);
    });
    sim.run();
    let snap = sim.obs().snapshot();
    let margin = snap
        .gauges
        .get("fed.round.quorum_margin")
        .copied()
        .expect("quorum margin gauge set when the gate is active");
    assert!((-0.5..=0.5).contains(&margin), "margin {margin} in [-q, 1-q]");

    // Gate off → no gauge (pre-fleet runs stay byte-identical).
    let mut sim = small_sim(11, |_| {});
    sim.run();
    assert!(!sim.obs().snapshot().gauges.contains_key("fed.round.quorum_margin"));
}

#[test]
fn detached_runs_report_zero_slo_failures() {
    let mut sim = small_sim(3, |_| {});
    let reports = sim.run();
    assert!(reports.iter().all(|r| r.faults.slo_failures == 0));
    assert!(sim.take_telemetry().is_none());
}
