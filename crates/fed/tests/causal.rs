//! Causal trace locks: the graph a federated run records must be a pure
//! function of the seed — byte-identical at any pool width, with disjoint
//! trace-ID universes across seeds — and its crash→rejoin / aggregator
//! failover chains plus the root-cause ranking must survive a real run.

use fexiot_fed::{
    Client, Failover, FaultPlan, FedConfig, FedSim, Sampling, Strategy, Topology,
};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_obs::{CausalGraph, EdgeKind, FleetTelemetry, SloEngine, Timing, TimeSeriesStore};
use fexiot_tensor::rng::Rng;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A 12-client federation over a tiny shared graph pool (dealt round-robin
/// so every client holds one), under the full fault surface: dropout,
/// crash-and-rejoin, stragglers, lossy links, and a crashing aggregator
/// tier with ring failover.
fn faulty_sim(seed: u64) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 12;
    let ds = generate_dataset(&cfg, &mut rng);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[8], 4, &mut rng);
    let clients = (0..12)
        .map(|i| {
            let graphs = vec![ds.graphs[i % ds.graphs.len()].clone()];
            Client::new(i, Encoder::Gin(template.clone()), GraphDataset::new(graphs))
        })
        .collect();
    let config = FedConfig {
        strategy: Strategy::FedAvg,
        rounds: 5,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 4,
            ..Default::default()
        },
        sampling: Sampling::FixedK(8),
        topology: Topology::hierarchical(2, Failover::Reassign),
        quorum: 0.5,
        deadline_ticks: Some(10),
        faults: FaultPlan::none()
            .with_seed(seed)
            .with_dropout(0.25)
            .with_crash(0.3, 2)
            .with_straggler(0.3)
            .with_msg_loss(0.2)
            .with_agg_crash(0.4, 2),
        seed,
        ..Default::default()
    };
    FedSim::new(clients, config)
}

/// Runs the faulty federation at the given pool width and returns the
/// recorded causal graph.
fn traced_run(seed: u64, width: usize) -> CausalGraph {
    fexiot_par::set_threads(width);
    let mut sim = faulty_sim(seed);
    sim.enable_causal_trace("causal-test");
    sim.run();
    sim.take_causal_trace().expect("trace was enabled")
}

fn trace_ids(graph: &CausalGraph) -> BTreeSet<u64> {
    graph.nodes.iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Same seed ⇒ the wall-clock-free export is byte-identical at widths
    // 1, 2, and 7: every causal emission happens on the coordinator thread
    // against draws fixed before the training scatter.
    #[test]
    fn same_seed_trace_is_byte_identical_across_widths(seed in 0u64..500) {
        let reference = traced_run(seed, 1).to_json(Timing::Exclude).to_string();
        for width in [2usize, 7] {
            let doc = traced_run(seed, width).to_json(Timing::Exclude).to_string();
            prop_assert_eq!(&doc, &reference, "trace diverged at width {}", width);
        }
    }

    // Distinct seeds ⇒ disjoint trace-ID universes (the seed is hashed
    // into every ID), so traces from different runs can never be confused
    // when loaded side by side.
    #[test]
    fn distinct_seeds_yield_disjoint_trace_ids(a in 0u64..250, b in 250u64..500) {
        let ids_a = trace_ids(&traced_run(a, 1));
        let ids_b = trace_ids(&traced_run(b, 1));
        prop_assert!(
            ids_a.is_disjoint(&ids_b),
            "seeds {} and {} share {} trace ids", a, b,
            ids_a.intersection(&ids_b).count()
        );
    }
}

/// A rule a faulty 12-client fleet can never satisfy, so the SLO engine
/// fails deterministically and exercises the root-cause path.
fn impossible_slo() -> FleetTelemetry {
    let engine = SloEngine::parse(
        "[[rule]]\nname = \"impossible\"\nmetric = \"fed.round.participants\"\n\
         agg = \"mean\"\nwindow = 4\nop = \">=\"\nthreshold = 100\nmin_samples = 2",
    )
    .expect("rules parse");
    FleetTelemetry::new(TimeSeriesStore::new(64), Some(engine))
}

#[test]
fn crash_chains_and_root_cause_survive_a_real_run() {
    fexiot_par::set_threads(1);
    let mut sim = faulty_sim(77);
    sim.attach_telemetry(impossible_slo());
    sim.enable_causal_trace("causal-test");
    let reports = sim.run();
    assert!(
        reports.iter().any(|r| r.faults.slo_failures > 0),
        "the impossible rule never failed"
    );
    assert!(
        sim.last_root_cause().is_some(),
        "no root cause attributed despite failing SLO"
    );

    let telemetry = sim.take_telemetry().expect("telemetry attached");
    let graph = sim.take_causal_trace().expect("trace enabled");

    // The export round-trips through the parser unchanged.
    let doc = graph.to_json(Timing::Exclude);
    let parsed = CausalGraph::parse(&doc).expect("parses own export");
    assert_eq!(parsed.to_json(Timing::Exclude).to_string(), doc.to_string());

    // Crash windows close into rejoin nodes linked by follows-from edges.
    let kind_of = |id: u64| graph.node(id).map(|n| n.kind.as_str());
    let crash_rejoin = graph.edges.iter().any(|e| {
        e.kind == EdgeKind::Follows
            && kind_of(e.from) == Some("crash")
            && kind_of(e.to) == Some("rejoin")
    });
    assert!(crash_rejoin, "no crash→rejoin follows-from chain recorded");
    assert!(
        graph.nodes.iter().any(|n| n.kind == "agg_crash"),
        "aggregator crashes never recorded"
    );

    // The root-cause ranking for the failing rule is well-formed: shares
    // sum to 1 over non-structural fault kinds, ordered by attributed cost.
    let engine = telemetry.slo.as_ref().expect("engine attached");
    let ranked = fexiot_obs::root_cause(&graph, engine);
    assert_eq!(ranked.len(), 1, "one failing rule, one ranking");
    let causes = &ranked[0].causes;
    assert!(!causes.is_empty(), "no causes attributed");
    let share_sum: f64 = causes.iter().map(|c| c.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
    assert!(
        causes.windows(2).all(|w| w[0].ticks >= w[1].ticks),
        "causes not sorted by attributed ticks"
    );
    assert_eq!(
        sim.last_root_cause(),
        Some(causes[0].cause.as_str()),
        "round annotation and report ranking disagree"
    );
}
