//! Regression lock: with `FaultPlan::none()` (the default), every strategy's
//! `RoundReport` sequence must be **bit-identical** to the pre-fault-injection
//! simulator. The constants below were captured from the simulator before the
//! resilience layer landed; re-run with `FEXIOT_PRINT_GOLDEN=1 cargo test -q
//! -p fexiot-fed --test golden -- --nocapture` to regenerate after an
//! *intentional* numerical change.

use fexiot_fed::{Client, FedConfig, FedSim, Strategy};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;

fn make_sim(strategy: Strategy, n_clients: usize, seed: u64, rounds: usize) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 80;
    let ds = generate_dataset(&cfg, &mut rng);
    let (train, _) = ds.train_test_split(0.8, &mut rng);
    let splits = train.dirichlet_split(n_clients, 1.0, &mut rng);
    let d = train.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[12], 6, &mut rng);
    let clients = splits
        .into_iter()
        .enumerate()
        .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
        .collect();
    let config = FedConfig {
        strategy,
        rounds,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 12,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    FedSim::new(clients, config)
}

/// One observed round flattened to exactly comparable integers:
/// `(mean_loss bits, uploaded bytes, downloaded bytes, up msgs, down msgs)`.
type Row = (u64, usize, usize, usize, usize);

fn observe(strategy: Strategy) -> Vec<Row> {
    let mut sim = make_sim(strategy, 5, 42, 3);
    sim.run()
        .into_iter()
        .map(|r| {
            (
                r.mean_loss.to_bits(),
                r.cumulative_comm.uploaded_bytes,
                r.cumulative_comm.downloaded_bytes,
                r.cumulative_comm.upload_messages,
                r.cumulative_comm.download_messages,
            )
        })
        .collect()
}

fn check(name: &str, strategy: Strategy, golden: &[Row]) {
    let got = observe(strategy);
    if std::env::var("FEXIOT_PRINT_GOLDEN").is_ok() {
        println!("        // {name}");
        for r in &got {
            println!(
                "        (0x{:016X}, {}, {}, {}, {}),",
                r.0, r.1, r.2, r.3, r.4
            );
        }
        return;
    }
    assert_eq!(got, golden, "{name}: RoundReport sequence drifted");
}

#[test]
fn fedavg_reports_bit_identical_to_seed() {
    check(
        "FedAvg",
        Strategy::FedAvg,
        &[
            // FedAvg
            (0x3FE73B15DB1989D5, 28320, 28320, 5, 5),
            (0x3FEB1A494EBFF1E6, 56640, 56640, 10, 10),
            (0x3FE724EB598F579D, 84960, 84960, 15, 15),
        ],
    );
}

#[test]
fn local_only_reports_bit_identical_to_seed() {
    check(
        "LocalOnly",
        Strategy::LocalOnly,
        &[
            // LocalOnly
            (0x3FE73B15DB1989D5, 0, 0, 0, 0),
            (0x3FEB0A9792279D3D, 0, 0, 0, 0),
            (0x3FE6EA4623383AF8, 0, 0, 0, 0),
        ],
    );
}

#[test]
fn fmtl_reports_bit_identical_to_seed() {
    check(
        "FMTL",
        Strategy::fmtl_default(),
        &[
            // FMTL
            (0x3FE73B15DB1989D5, 28320, 28320, 5, 5),
            (0x3FEB1A494EBFF1E6, 56640, 56640, 10, 10),
            (0x3FE724EB598F579D, 84960, 84960, 15, 15),
        ],
    );
}

#[test]
fn gcfl_reports_bit_identical_to_seed() {
    check(
        "GCFL+",
        Strategy::gcfl_default(),
        &[
            // GCFL+
            (0x3FE73B15DB1989D5, 28320, 28320, 5, 5),
            (0x3FEB1A494EBFF1E6, 56640, 56640, 10, 10),
            (0x3FE724EB598F579D, 84960, 84960, 15, 15),
        ],
    );
}

#[test]
fn fexiot_reports_bit_identical_to_seed() {
    check(
        "FexIoT",
        Strategy::fexiot_default(),
        &[
            // FexIoT
            (0x3FE73B15DB1989D5, 28320, 28320, 10, 10),
            (0x3FEB1A494EBFF1E6, 53760, 53760, 15, 15),
            (0x3FE7261F1D537178, 82080, 82080, 25, 25),
        ],
    );
}
