//! End-to-end check of per-round critical-path attribution: with a
//! straggler-only [`FaultPlan`], the path must name exactly the client the
//! seeded injector scripted as the slowest straggler of each round. The
//! expectation is computed by replaying a second `FaultInjector` with the
//! same plan — the cost model is a pure function of the seed, so the sim and
//! the replay must agree tick-for-tick.

use fexiot_fed::faults::straggler_wait;
use fexiot_fed::{Client, FaultInjector, FaultPlan, FedConfig, FedSim, Participation, Strategy};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;

fn make_sim(plan: FaultPlan, n_clients: usize, seed: u64, rounds: usize) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 80;
    let ds = generate_dataset(&cfg, &mut rng);
    let (train, _) = ds.train_test_split(0.8, &mut rng);
    let splits = train.dirichlet_split(n_clients, 1.0, &mut rng);
    let d = train.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[12], 6, &mut rng);
    let clients = splits
        .into_iter()
        .enumerate()
        .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
        .collect();
    let config = FedConfig {
        strategy: Strategy::FedAvg,
        rounds,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 12,
            ..Default::default()
        },
        seed,
        faults: plan,
        ..Default::default()
    };
    FedSim::new(clients, config)
}

/// Replays the fault stream and returns each round's expected slowest
/// straggler as `(client, wait_ticks)` — `None` for straggler-free rounds.
/// Ties break to the lowest client id, matching the critical-path contract.
fn expected_stragglers(
    plan: &FaultPlan,
    n_clients: usize,
    rounds: usize,
) -> Vec<Option<(usize, u64)>> {
    let mut replay = FaultInjector::new(plan.clone(), n_clients);
    (0..rounds)
        .map(|r| {
            let rf = replay.draw_round(r);
            let mut slowest: Option<(usize, u64)> = None;
            for (c, p) in rf.participation.iter().enumerate() {
                if let Participation::Straggler { delay } = p {
                    let ticks = straggler_wait(*delay, plan.staleness_bound) as u64;
                    // Strictly-greater keeps the first (lowest id) on ties.
                    if ticks > 0 && slowest.map(|(_, t)| ticks > t).unwrap_or(true) {
                        slowest = Some((c, ticks));
                    }
                }
            }
            slowest
        })
        .collect()
}

#[test]
fn critical_path_names_the_scripted_straggler() {
    const N: usize = 5;
    const ROUNDS: usize = 4;
    let plan = FaultPlan::none().with_seed(1).with_straggler(0.3);

    let mut sim = make_sim(plan.clone(), N, 42, ROUNDS);
    sim.run();

    let expected = expected_stragglers(&plan, N, ROUNDS);
    assert!(
        expected.iter().any(Option::is_some),
        "seed scripted no stragglers; pick another seed"
    );
    assert!(
        expected.iter().any(Option::is_none),
        "seed scripted stragglers every round; an idle round must be covered too"
    );

    let path = sim.critical_path();
    assert_eq!(path.len(), ROUNDS);
    for (r, (entry, want)) in path.iter().zip(&expected).enumerate() {
        assert_eq!(entry.round, r);
        match want {
            Some((client, ticks)) => {
                assert_eq!(
                    entry.client,
                    Some(*client),
                    "round {r}: wrong client on the critical path"
                );
                assert_eq!(entry.total_ticks, *ticks, "round {r}: wrong tick total");
                assert_eq!(entry.straggler_ticks, *ticks);
                assert_eq!(entry.backoff_ticks, 0, "straggler-only plan has no backoff");
                assert_eq!(entry.retries, 0);
                assert_eq!(entry.cause, "straggler");
            }
            None => {
                assert_eq!(entry.client, None, "round {r}: expected an idle round");
                assert_eq!(entry.total_ticks, 0);
                assert_eq!(entry.cause, "idle");
            }
        }
    }
}

#[test]
fn straggler_waits_are_bounded_by_the_staleness_window() {
    let plan = FaultPlan::none().with_seed(7).with_straggler(0.9);
    let mut sim = make_sim(plan.clone(), 4, 11, 3);
    sim.run();
    for entry in sim.critical_path() {
        assert!(
            entry.straggler_ticks <= plan.staleness_bound as u64,
            "round {}: wait {} exceeds staleness bound {}",
            entry.round,
            entry.straggler_ticks,
            plan.staleness_bound
        );
    }
}

#[test]
fn lossy_links_put_backoff_on_the_critical_path() {
    // Message loss only: every tick on the path is retry backoff.
    let plan = FaultPlan::none().with_seed(23).with_msg_loss(0.4);
    let mut sim = make_sim(plan.clone(), 5, 42, 3);
    let reports = sim.run();
    let retried: usize = reports.iter().map(|r| r.faults.retried_messages).sum();
    assert!(retried > 0, "seed produced no retries; pick another seed");

    let path = sim.critical_path();
    let busy: Vec<_> = path.iter().filter(|e| e.client.is_some()).collect();
    assert!(!busy.is_empty(), "retries must surface on the critical path");
    for entry in &busy {
        assert_eq!(entry.cause, "backoff");
        assert_eq!(entry.straggler_ticks, 0);
        assert!(entry.backoff_ticks > 0);
        assert!(entry.retries > 0);
    }
    // Per-round cost attribution never exceeds the round's global ledger.
    for (entry, report) in path.iter().zip(&reports) {
        assert!(
            entry.backoff_ticks <= report.faults.backoff_ticks as u64,
            "round {}: critical-path backoff exceeds the round total",
            entry.round
        );
    }
}

#[test]
fn critical_path_is_deterministic_in_the_seed() {
    let plan = FaultPlan::none()
        .with_seed(99)
        .with_straggler(0.4)
        .with_msg_loss(0.2);
    let run = |plan: FaultPlan| {
        let mut sim = make_sim(plan, 4, 17, 3);
        sim.run();
        sim.critical_path()
    };
    assert_eq!(run(plan.clone()), run(plan));
}

#[test]
fn fault_free_runs_have_an_all_idle_path() {
    let mut sim = make_sim(FaultPlan::none(), 3, 5, 2);
    sim.run();
    for entry in sim.critical_path() {
        assert_eq!(entry.client, None);
        assert_eq!(entry.cause, "idle");
        assert_eq!(entry.total_ticks, 0);
    }
}
