//! Property tests for the federated substrate: secure aggregation must be
//! exactly equivalent to plain weighted averaging for arbitrary shapes and
//! weights, DP clipping must enforce its bound for arbitrary updates, and the
//! Sybil weights must stay in range.

use fexiot_fed::dp::{clip_update, privatize_update, DpConfig};
use fexiot_fed::secure_agg::secure_weighted_average;
use fexiot_fed::sybil::foolsgold_weights;
use fexiot_fed::{
    Client, Corruption, Failover, FaultPlan, FedConfig, FedSim, Sampling, Strategy, Topology,
};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::optim::{param_weighted_average, ParamVec};
use fexiot_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// A small federation (3 clients, tiny graphs) under the given fault plan.
fn tiny_sim(seed: u64, rounds: usize, faults: FaultPlan) -> FedSim {
    tiny_sim_with(seed, rounds, faults, |_| {})
}

/// [`tiny_sim`] with a config hook applied before construction (the sampler
/// is seeded from the final config, so fleet knobs must be set up front).
fn tiny_sim_with(
    seed: u64,
    rounds: usize,
    faults: FaultPlan,
    tweak: impl FnOnce(&mut FedConfig),
) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 30;
    let ds = generate_dataset(&cfg, &mut rng);
    let splits = ds.dirichlet_split(3, 1.0, &mut rng);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[8], 4, &mut rng);
    let clients = splits
        .into_iter()
        .enumerate()
        .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
        .collect();
    let mut config = FedConfig {
        strategy: Strategy::fexiot_default(),
        rounds,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 4,
            ..Default::default()
        },
        faults,
        seed,
        ..Default::default()
    };
    tweak(&mut config);
    FedSim::new(clients, config)
}

fn random_params(rng: &mut Rng, layers: usize, max_dim: usize) -> ParamVec {
    (0..layers)
        .map(|_| {
            let r = 1 + rng.usize(max_dim);
            let c = 1 + rng.usize(max_dim);
            Matrix::random_normal(r, c, 0.0, 2.0, rng)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn secure_aggregation_equals_plain_average(seed in 0u64..500, n in 2usize..8) {
        let mut rng = Rng::seed_from_u64(seed);
        // All clients share layer shapes (as in a real federation).
        let template = random_params(&mut rng, 3, 5);
        let models: Vec<ParamVec> = (0..n)
            .map(|_| {
                template
                    .iter()
                    .map(|m| Matrix::random_normal(m.rows(), m.cols(), 0.0, 1.0, &mut rng))
                    .collect()
            })
            .collect();
        let refs: Vec<&ParamVec> = models.iter().collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.uniform(0.5, 10.0)).collect();
        let plain = param_weighted_average(&refs, &weights);
        let secure = secure_weighted_average(&refs, &weights, seed ^ 0xABCD);
        for (a, b) in plain.iter().zip(&secure) {
            prop_assert!(a.max_abs_diff(b) < 1e-8);
        }
    }

    #[test]
    fn clipping_enforces_the_bound(seed in 0u64..500, clip in 0.1f64..5.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut delta = random_params(&mut rng, 2, 6);
        clip_update(&mut delta, clip);
        let norm: f64 = delta.iter().map(|m| m.frobenius_norm().powi(2)).sum::<f64>().sqrt();
        prop_assert!(norm <= clip + 1e-9, "norm {norm} > clip {clip}");
    }

    #[test]
    fn privatized_updates_stay_finite(seed in 0u64..200, noise in 0.01f64..3.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut delta = random_params(&mut rng, 2, 4);
        privatize_update(&mut delta, &DpConfig { clip_norm: 1.0, noise_multiplier: noise }, &mut rng);
        for m in &delta {
            prop_assert!(m.is_finite());
        }
    }

    #[test]
    fn sybil_weights_in_unit_interval(seed in 0u64..300, n in 1usize..10, dim in 1usize..20) {
        let mut rng = Rng::seed_from_u64(seed);
        let histories: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.standard_normal()).collect())
            .collect();
        let w = foolsgold_weights(&histories);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn retries_never_decrease_comm_totals(seed in 0u64..1000, loss in 0.0f64..0.6) {
        let plan = FaultPlan::none().with_seed(seed).with_msg_loss(loss);
        let mut sim = tiny_sim(seed, 3, plan);
        let mut prev = sim.run_round().cumulative_comm;
        for _ in 1..3 {
            let cur = sim.run_round().cumulative_comm;
            prop_assert!(cur.uploaded_bytes >= prev.uploaded_bytes);
            prop_assert!(cur.downloaded_bytes >= prev.downloaded_bytes);
            prop_assert!(cur.upload_messages >= prev.upload_messages);
            prop_assert!(cur.download_messages >= prev.download_messages);
            prop_assert!(cur.retried_messages >= prev.retried_messages);
            prop_assert!(cur.retried_bytes >= prev.retried_bytes);
            // Retries are included in the directional totals, never beyond.
            prop_assert!(cur.retried_bytes <= cur.uploaded_bytes + cur.downloaded_bytes);
            prev = cur;
        }
    }

    #[test]
    fn telemetry_partitions_clients_each_round(
        seed in 0u64..1000,
        dropout in 0.0f64..0.5,
        straggler in 0.0f64..0.5,
        corrupt in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_dropout(dropout)
            .with_straggler(straggler)
            .with_crash(0.1, 2)
            .with_corruption(corrupt, Corruption::NonFinite);
        let mut sim = tiny_sim(seed, 3, plan);
        for r in sim.run() {
            prop_assert_eq!(
                r.faults.participants + r.faults.dropped + r.faults.quarantined,
                r.faults.clients,
                "round {}: {:?}", r.round, r.faults
            );
        }
    }

    #[test]
    fn faulty_runs_never_produce_nan(seed in 0u64..1000, fault_level in 0.0f64..0.5) {
        let plan = FaultPlan::none()
            .with_seed(seed)
            .with_dropout(fault_level)
            .with_msg_loss(fault_level * 0.5)
            .with_straggler(fault_level * 0.5)
            .with_corruption(fault_level * 0.5, Corruption::NonFinite);
        let mut sim = tiny_sim(seed, 3, plan);
        for r in sim.run() {
            prop_assert!(r.mean_loss.is_finite(), "round {} loss {}", r.round, r.mean_loss);
        }
        for c in &sim.clients {
            for m in c.encoder.params() {
                prop_assert!(m.is_finite(), "non-finite global params survived");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Checkpointing mid-run — with crash-and-rejoin `down_until` windows
    // still open on clients *and* aggregators, the sampler stream mid-
    // sequence, and quorum gating live — then restoring into a fresh build
    // must resume bit-identically to the uninterrupted run for arbitrary
    // seeds and checkpoint positions.
    #[test]
    fn checkpoint_under_open_crash_windows_resumes_bit_identically(
        seed in 0u64..1000,
        cut in 1usize..5,
    ) {
        let fleet = |seed: u64| {
            let plan = FaultPlan::none()
                .with_seed(seed)
                .with_dropout(0.2)
                .with_crash(0.4, 3)
                .with_agg_crash(0.4, 3);
            tiny_sim_with(seed, 6, plan, |c| {
                c.sampling = Sampling::FixedK(2);
                c.topology = Topology::hierarchical(2, Failover::Reassign);
                c.quorum = 0.5;
            })
        };
        let fingerprint = |r: &fexiot_fed::RoundReport| {
            (r.mean_loss.to_bits(), r.cumulative_comm, r.faults)
        };

        let mut uninterrupted = fleet(seed);
        let all: Vec<_> = uninterrupted.run().iter().map(&fingerprint).collect();

        let mut first = fleet(seed);
        for _ in 0..cut {
            first.run_round();
        }
        let blob = first.checkpoint();
        let mut resumed = fleet(seed);
        resumed.restore(&blob).expect("restore failed");
        for want in &all[cut..] {
            let got = fingerprint(&resumed.run_round());
            prop_assert_eq!(&got, want, "diverged after restore at round {}", cut);
        }
    }
}
