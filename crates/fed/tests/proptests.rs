//! Property tests for the federated substrate: secure aggregation must be
//! exactly equivalent to plain weighted averaging for arbitrary shapes and
//! weights, DP clipping must enforce its bound for arbitrary updates, and the
//! Sybil weights must stay in range.

use fexiot_fed::dp::{clip_update, privatize_update, DpConfig};
use fexiot_fed::secure_agg::secure_weighted_average;
use fexiot_fed::sybil::foolsgold_weights;
use fexiot_tensor::optim::{param_weighted_average, ParamVec};
use fexiot_tensor::{Matrix, Rng};
use proptest::prelude::*;

fn random_params(rng: &mut Rng, layers: usize, max_dim: usize) -> ParamVec {
    (0..layers)
        .map(|_| {
            let r = 1 + rng.usize(max_dim);
            let c = 1 + rng.usize(max_dim);
            Matrix::random_normal(r, c, 0.0, 2.0, rng)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn secure_aggregation_equals_plain_average(seed in 0u64..500, n in 2usize..8) {
        let mut rng = Rng::seed_from_u64(seed);
        // All clients share layer shapes (as in a real federation).
        let template = random_params(&mut rng, 3, 5);
        let models: Vec<ParamVec> = (0..n)
            .map(|_| {
                template
                    .iter()
                    .map(|m| Matrix::random_normal(m.rows(), m.cols(), 0.0, 1.0, &mut rng))
                    .collect()
            })
            .collect();
        let refs: Vec<&ParamVec> = models.iter().collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.uniform(0.5, 10.0)).collect();
        let plain = param_weighted_average(&refs, &weights);
        let secure = secure_weighted_average(&refs, &weights, seed ^ 0xABCD);
        for (a, b) in plain.iter().zip(&secure) {
            prop_assert!(a.max_abs_diff(b) < 1e-8);
        }
    }

    #[test]
    fn clipping_enforces_the_bound(seed in 0u64..500, clip in 0.1f64..5.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut delta = random_params(&mut rng, 2, 6);
        clip_update(&mut delta, clip);
        let norm: f64 = delta.iter().map(|m| m.frobenius_norm().powi(2)).sum::<f64>().sqrt();
        prop_assert!(norm <= clip + 1e-9, "norm {norm} > clip {clip}");
    }

    #[test]
    fn privatized_updates_stay_finite(seed in 0u64..200, noise in 0.01f64..3.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut delta = random_params(&mut rng, 2, 4);
        privatize_update(&mut delta, &DpConfig { clip_norm: 1.0, noise_multiplier: noise }, &mut rng);
        for m in &delta {
            prop_assert!(m.is_finite());
        }
    }

    #[test]
    fn sybil_weights_in_unit_interval(seed in 0u64..300, n in 1usize..10, dim in 1usize..20) {
        let mut rng = Rng::seed_from_u64(seed);
        let histories: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.standard_normal()).collect())
            .collect();
        let w = foolsgold_weights(&histories);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }
}
