//! Fleet-scale resilience locks: client sampling, hierarchical aggregators
//! with failover, and quorum-gated rounds must (a) keep a 2000-client
//! federation deterministic under heavy faults, (b) collapse to the exact
//! pre-fleet behavior when disabled, and (c) survive checkpoint/restore and
//! any pool width bit-for-bit.

use fexiot_fed::{
    Client, Failover, FaultPlan, FedConfig, FedSim, RoundReport, Sampling, Strategy, Topology,
};
use fexiot_gnn::{ContrastiveConfig, Encoder, Gin};
use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
use fexiot_tensor::rng::Rng;

/// Builds an `n_clients`-strong federation over a tiny shared graph pool:
/// graphs are dealt round-robin so every client holds at least one (a
/// Dirichlet split at fleet scale would leave most clients empty), with a
/// +1 remainder giving the low ids slightly more weight — enough skew to
/// exercise weighted sampling.
fn fleet_sim(n_clients: usize, seed: u64, config_fn: impl FnOnce(&mut FedConfig)) -> FedSim {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = 30;
    let ds = generate_dataset(&cfg, &mut rng);
    let d = ds.graphs[0].nodes[0].features.len();
    let template = Gin::new(d, &[8], 4, &mut rng);
    let clients = (0..n_clients)
        .map(|i| {
            let mut graphs = vec![ds.graphs[i % ds.graphs.len()].clone()];
            if i < n_clients % ds.graphs.len() {
                graphs.push(ds.graphs[(i + 7) % ds.graphs.len()].clone());
            }
            Client::new(i, Encoder::Gin(template.clone()), GraphDataset::new(graphs))
        })
        .collect();
    let mut config = FedConfig {
        strategy: Strategy::FedAvg,
        rounds: 10,
        local: ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 4,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    config_fn(&mut config);
    FedSim::new(clients, config)
}

/// The acceptance fault plan: 30% client dropout plus an aggregator tier
/// that crashes and stays down for multiple rounds.
fn fleet_plan(seed: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_dropout(0.3)
        .with_agg_crash(0.15, 2)
}

fn fleet_config(config: &mut FedConfig) {
    config.sampling = Sampling::FixedK(48);
    config.topology = Topology::hierarchical(2, Failover::Skip);
    config.quorum = 0.6;
    config.deadline_ticks = Some(8);
    config.faults = fleet_plan(config.seed);
}

/// Exact per-round fingerprint for bit-identity comparisons.
type Row = (u64, usize, usize, usize, usize, usize, bool);

fn fingerprint(reports: &[RoundReport]) -> Vec<Row> {
    reports
        .iter()
        .map(|r| {
            (
                r.mean_loss.to_bits(),
                r.cumulative_comm.total_bytes(),
                r.cumulative_comm.upload_messages,
                r.cumulative_comm.agg_forward_messages,
                r.faults.sampled,
                r.faults.participants,
                r.faults.quorum_aborted,
            )
        })
        .collect()
}

/// The headline acceptance scenario: a seeded 2000-client / 2-aggregator
/// federation with 30% dropout and multi-round aggregator crashes completes
/// 10 rounds, degrades (never corrupts) through at least one quorum-aborted
/// round, and keeps every telemetry partition and comm invariant intact.
#[test]
fn fleet_scale_run_degrades_without_corruption() {
    let mut sim = fleet_sim(2000, 42, fleet_config);
    let reports = sim.run();
    assert_eq!(reports.len(), 10);

    let mut aborted = 0usize;
    let mut agg_down_rounds = 0usize;
    for r in &reports {
        assert!(r.mean_loss.is_finite(), "round {}: non-finite loss", r.round);
        assert_eq!(r.comm_error, None, "round {}: comm invariant broke", r.round);
        let t = &r.faults;
        assert_eq!(t.clients, 2000);
        assert_eq!(t.sampled, 48, "FixedK cohort size");
        assert_eq!(t.aggregators, 2);
        assert_eq!(
            t.participants + t.dropped + t.quarantined,
            t.sampled,
            "round {}: sampled-cohort partition broke: {t:?}",
            r.round
        );
        assert!(t.deadline_missed <= t.dropped);
        aborted += t.quorum_aborted as usize;
        agg_down_rounds += (t.agg_down > 0) as usize;
        if t.quorum_aborted {
            // An aborted round prices uploads but installs nothing, so it
            // must not broadcast down the trunk.
            assert!(t.agg_down > 0 || t.participants * 10 < t.sampled * 6);
        }
    }
    assert!(agg_down_rounds >= 1, "the aggregator crash never fired");
    assert!(aborted >= 1, "expected at least one quorum-degraded round");
    assert!(
        aborted < reports.len(),
        "every round aborted — nothing was learned"
    );
    // The trunk was actually used: hierarchical rounds price forwards, and
    // committed rounds broadcast back down.
    let last = reports.last().unwrap().cumulative_comm;
    assert!(last.agg_forward_messages > 0);
    assert!(last.agg_broadcast_messages > 0);
    assert!(last.agg_broadcast_messages <= last.agg_forward_messages);
}

/// Same fleet, same seed, run twice: byte-identical reports. The whole
/// fault/sampling/failover stack is a pure function of the seed.
#[test]
fn fleet_scale_run_is_deterministic() {
    let a = fingerprint(&fleet_sim(500, 7, fleet_config).run());
    let b = fingerprint(&fleet_sim(500, 7, fleet_config).run());
    assert_eq!(a, b);
}

/// `Sampling::Fraction(1.0)` and `FixedK(n)` both select everyone, draw
/// nothing from the sampler stream, and must be bit-identical to
/// `Sampling::Full`.
#[test]
fn full_coverage_sampling_matches_disabled_sampling() {
    let full = fingerprint(&fleet_sim(12, 3, |_| {}).run());
    let frac = fingerprint(&fleet_sim(12, 3, |c| c.sampling = Sampling::Fraction(1.0)).run());
    let fixed = fingerprint(&fleet_sim(12, 3, |c| c.sampling = Sampling::FixedK(12)).run());
    assert_eq!(frac, full, "Fraction(1.0) drifted from Full");
    assert_eq!(fixed, full, "FixedK(n) drifted from Full");
}

/// A single-aggregator "hierarchy" is just the flat topology and must not
/// perturb a single bit (no trunk pricing, no aggregator fault draws).
#[test]
fn single_aggregator_topology_is_flat() {
    let flat = fingerprint(&fleet_sim(12, 3, |_| {}).run());
    let one = fingerprint(
        &fleet_sim(12, 3, |c| {
            c.topology = Topology {
                aggregators: 1,
                failover: Failover::Skip,
            };
        })
        .run(),
    );
    assert_eq!(one, flat);
}

/// A healthy hierarchy changes only the traffic shape: the weighted average
/// is associative, so edge pre-aggregation must leave losses and client-link
/// traffic untouched while adding trunk forwards/broadcasts on top.
#[test]
fn healthy_hierarchy_changes_traffic_shape_only() {
    let flat = fleet_sim(24, 11, |_| {}).run();
    let tiered =
        fleet_sim(24, 11, |c| c.topology = Topology::hierarchical(3, Failover::Reassign)).run();
    for (f, t) in flat.iter().zip(&tiered) {
        assert_eq!(f.mean_loss.to_bits(), t.mean_loss.to_bits());
        assert_eq!(f.cumulative_comm.uploaded_bytes, t.cumulative_comm.uploaded_bytes);
        assert_eq!(f.cumulative_comm.downloaded_bytes, t.cumulative_comm.downloaded_bytes);
        assert_eq!(f.cumulative_comm.agg_forward_messages, 0);
        // 3 aggregators × (round+1) rounds, forward and broadcast.
        assert_eq!(
            t.cumulative_comm.agg_forward_messages,
            3 * (t.round),
            "round {}",
            t.round
        );
        assert_eq!(
            t.cumulative_comm.agg_broadcast_messages,
            t.cumulative_comm.agg_forward_messages
        );
    }
}

/// Reassign failover keeps a crashed aggregator's cohort in the round (via
/// the ring route) while Skip sits them out — so Reassign must never have
/// fewer participants in rounds where an aggregator is down.
#[test]
fn reassign_failover_retains_the_orphaned_cohort() {
    let plan = |seed| FaultPlan::none().with_seed(seed).with_agg_crash(0.4, 2);
    let skip = fleet_sim(60, 19, |c| {
        c.topology = Topology::hierarchical(3, Failover::Skip);
        c.faults = plan(19);
    })
    .run();
    let reassign = fleet_sim(60, 19, |c| {
        c.topology = Topology::hierarchical(3, Failover::Reassign);
        c.faults = plan(19);
    })
    .run();
    let mut saw_down = false;
    let mut saw_reassign = false;
    for (s, r) in skip.iter().zip(&reassign) {
        assert_eq!(s.faults.agg_down, r.faults.agg_down, "same fault stream");
        if s.faults.agg_down > 0 {
            saw_down = true;
            assert!(r.faults.participants >= s.faults.participants);
            saw_reassign |= r.faults.reassigned > 0;
            assert_eq!(s.faults.reassigned, 0, "Skip must never reroute");
        }
    }
    assert!(saw_down, "seed never downed an aggregator — test is vacuous");
    assert!(saw_reassign, "Reassign never rerouted a cohort");
}

/// Checkpoint mid-run under the full fleet stack (sampler stream, aggregator
/// crash ledger, trunk counters all live), restore into a freshly built
/// federation, and the resumed tail must be bit-identical to the
/// uninterrupted run.
#[test]
fn fleet_checkpoint_restore_resumes_bit_identically() {
    let build = || fleet_sim(200, 23, |c| {
        fleet_config(c);
        c.sampling = Sampling::FixedK(24);
    });

    let mut uninterrupted = build();
    let all = fingerprint(&uninterrupted.run());

    let mut first = build();
    for _ in 0..5 {
        first.run_round();
    }
    let blob = first.checkpoint();

    let mut resumed = build();
    resumed.restore(&blob).expect("restore failed");
    let tail: Vec<Row> = fingerprint(&(0..5).map(|_| resumed.run_round()).collect::<Vec<_>>());
    assert_eq!(tail, all[5..], "resumed tail diverged from uninterrupted run");
}

/// Width-invariance at fleet scale: the sampled-subset training scatter must
/// produce byte-identical runs at 1, 2, and 7 threads (the global pool is
/// shared with other tests, which is safe because width never matters).
#[test]
fn fleet_run_is_width_invariant() {
    let run = |width: usize| {
        fexiot_par::set_threads(width);
        fingerprint(&fleet_sim(300, 5, fleet_config).run())
    };
    let reference = run(1);
    for width in [2, 7] {
        assert_eq!(run(width), reference, "fleet run diverged at width {width}");
    }
}
