//! Differential privacy for federated updates (paper §VI: "we will add
//! differential privacy ... to FexIoT in the future").
//!
//! DP-FedAvg-style update privatization: each client's round update is
//! L2-clipped to a sensitivity bound and perturbed with Gaussian noise
//! `sigma = clip_norm * noise_multiplier`. The accountant composes rounds
//! under Rényi differential privacy (the Gaussian mechanism's RDP is
//! `alpha / (2 z^2)` per release at noise multiplier `z`) and converts to
//! `(epsilon, delta)`-DP.

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// Differential-privacy configuration for client updates.
#[derive(Debug, Clone, Copy)]
pub struct DpConfig {
    /// L2 clipping bound on the per-round update.
    pub clip_norm: f64,
    /// Noise multiplier `z`; Gaussian std is `clip_norm * z`.
    pub noise_multiplier: f64,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            clip_norm: 1.0,
            noise_multiplier: 1.1,
        }
    }
}

/// Clips `delta` to L2 norm `clip_norm` in place; returns the pre-clip norm.
pub fn clip_update(delta: &mut ParamVec, clip_norm: f64) -> f64 {
    assert!(clip_norm > 0.0, "dp: clip_norm must be positive");
    let norm: f64 = delta
        .iter()
        .map(|m| m.frobenius_norm().powi(2))
        .sum::<f64>()
        .sqrt();
    if norm > clip_norm {
        let scale = clip_norm / norm;
        for m in delta.iter_mut() {
            *m = m.scale(scale);
        }
    }
    norm
}

/// Adds i.i.d. Gaussian noise with std `sigma` to every coordinate.
pub fn add_gaussian_noise(delta: &mut ParamVec, sigma: f64, rng: &mut Rng) {
    for m in delta.iter_mut() {
        let noise = Matrix::from_fn(m.rows(), m.cols(), |_, _| rng.normal(0.0, sigma));
        m.axpy(1.0, &noise);
    }
}

/// Privatizes an update: clip then noise. Returns the pre-clip norm.
pub fn privatize_update(delta: &mut ParamVec, config: &DpConfig, rng: &mut Rng) -> f64 {
    let norm = clip_update(delta, config.clip_norm);
    add_gaussian_noise(delta, config.clip_norm * config.noise_multiplier, rng);
    norm
}

/// RDP accountant for the subsampled-free Gaussian mechanism (every client
/// participates every round, so there is no amplification-by-sampling term).
#[derive(Debug, Clone)]
pub struct PrivacyAccountant {
    noise_multiplier: f64,
    releases: usize,
}

impl PrivacyAccountant {
    pub fn new(noise_multiplier: f64) -> Self {
        assert!(
            noise_multiplier > 0.0,
            "dp: noise multiplier must be positive"
        );
        Self {
            noise_multiplier,
            releases: 0,
        }
    }

    /// Records one privatized release (one round).
    pub fn record_release(&mut self) {
        self.releases += 1;
    }

    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Converts the composed RDP guarantee to `(epsilon, delta)`-DP:
    /// `eps = min_alpha T * alpha / (2 z^2) + ln(1/delta) / (alpha - 1)`.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&delta) && delta > 0.0,
            "dp: delta in (0,1)"
        );
        if self.releases == 0 {
            return 0.0;
        }
        let t = self.releases as f64;
        let z2 = self.noise_multiplier * self.noise_multiplier;
        let ln_inv_delta = (1.0 / delta).ln();
        let mut best = f64::INFINITY;
        for alpha_i in 2..=512 {
            let alpha = alpha_i as f64;
            let eps = t * alpha / (2.0 * z2) + ln_inv_delta / (alpha - 1.0);
            best = best.min(eps);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_of(norm_target: f64) -> ParamVec {
        // A 2x2 + 1x4 update with a known combined norm.
        let unit = 1.0 / (8.0f64).sqrt();
        vec![
            Matrix::full(2, 2, unit * norm_target),
            Matrix::full(1, 4, unit * norm_target),
        ]
    }

    fn norm(p: &ParamVec) -> f64 {
        p.iter()
            .map(|m| m.frobenius_norm().powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn clipping_caps_large_updates_only() {
        let mut big = delta_of(10.0);
        let pre = clip_update(&mut big, 1.0);
        assert!((pre - 10.0).abs() < 1e-9);
        assert!((norm(&big) - 1.0).abs() < 1e-9);

        let mut small = delta_of(0.5);
        clip_update(&mut small, 1.0);
        assert!((norm(&small) - 0.5).abs() < 1e-9, "small updates untouched");
    }

    #[test]
    fn noise_has_expected_scale() {
        let mut rng = Rng::seed_from_u64(1);
        let mut acc = 0.0;
        let n = 200;
        for _ in 0..n {
            let mut d = vec![Matrix::zeros(4, 4)];
            add_gaussian_noise(&mut d, 2.0, &mut rng);
            acc += d[0].as_slice().iter().map(|v| v * v).sum::<f64>() / 16.0;
        }
        let var = acc / n as f64;
        assert!((var - 4.0).abs() < 0.5, "empirical variance {var}");
    }

    #[test]
    fn privatized_update_differs_but_is_bounded_in_expectation() {
        let mut rng = Rng::seed_from_u64(2);
        let cfg = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.5,
        };
        let mut d = delta_of(3.0);
        let pre = privatize_update(&mut d, &cfg, &mut rng);
        assert!((pre - 3.0).abs() < 1e-9);
        // Clipped to 1 + noise of std 0.5 over 8 coords: norm stays small.
        assert!(norm(&d) < 4.0);
    }

    #[test]
    fn accountant_grows_with_rounds_and_shrinks_with_noise() {
        let mut low_noise = PrivacyAccountant::new(0.5);
        let mut high_noise = PrivacyAccountant::new(2.0);
        for _ in 0..10 {
            low_noise.record_release();
            high_noise.record_release();
        }
        let e_low = low_noise.epsilon(1e-5);
        let e_high = high_noise.epsilon(1e-5);
        assert!(
            e_low > e_high,
            "more noise must mean less epsilon: {e_low} vs {e_high}"
        );

        let mut short = PrivacyAccountant::new(1.0);
        short.record_release();
        let mut long = PrivacyAccountant::new(1.0);
        for _ in 0..100 {
            long.record_release();
        }
        assert!(long.epsilon(1e-5) > short.epsilon(1e-5));
    }

    #[test]
    fn zero_releases_zero_epsilon() {
        assert_eq!(PrivacyAccountant::new(1.0).epsilon(1e-5), 0.0);
    }
}
