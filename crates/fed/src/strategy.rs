//! Federated aggregation strategies: FedAvg, clustered FMTL, gradient-
//! sequence GCFL+, local-only self-training, and FexIoT's layer-wise
//! recursive clustering (paper Alg. 1 and §IV-C baselines).

/// Which server-side aggregation to run each round.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// McMahan et al.: weighted average of the full model over all clients.
    FedAvg,
    /// No communication at all — each client trains alone (the "Client"
    /// baseline in Fig. 4).
    LocalOnly,
    /// Sattler et al. FMTL: recursive bi-partitioning of clients by cosine
    /// similarity of their *whole-model updates* when the stationarity
    /// criteria fire; full-model aggregation within clusters.
    Fmtl { eps1: f64, eps2: f64 },
    /// Xie et al. GCFL+: like FMTL but clients are compared by their
    /// *gradient sequences* (history of flattened updates) rather than the
    /// latest update alone.
    GcflPlus { eps1: f64, eps2: f64 },
    /// This paper: bottom-up layer-wise recursive binary clustering
    /// (Algorithm 1) with per-layer aggregation and layer-wise traffic.
    FexIot { eps1: f64, eps2: f64 },
}

impl Strategy {
    /// Default thresholds from the paper (§IV-C): ϵ1 = 1.2, ϵ2 = 0.8.
    pub fn fexiot_default() -> Self {
        Strategy::FexIot {
            eps1: 1.2,
            eps2: 0.8,
        }
    }

    pub fn fmtl_default() -> Self {
        Strategy::Fmtl {
            eps1: 1.2,
            eps2: 0.8,
        }
    }

    pub fn gcfl_default() -> Self {
        Strategy::GcflPlus {
            eps1: 1.2,
            eps2: 0.8,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Strategy::FedAvg => "FedAvg",
            Strategy::LocalOnly => "Client",
            Strategy::Fmtl { .. } => "FMTL",
            Strategy::GcflPlus { .. } => "GCFL+",
            Strategy::FexIot { .. } => "FexIoT",
        }
    }
}
