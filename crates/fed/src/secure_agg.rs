//! Secure aggregation (paper §VI, citing Bonawitz et al. CCS 2017):
//! pairwise-masked uploads whose sum equals the true sum, so the server can
//! compute the weighted average without observing any individual model.
//!
//! This is the *protocol simulation* — pairwise masks are derived from
//! shared seeds as they would be after a Diffie-Hellman agreement; the
//! dropout-recovery secret-sharing layer of the full protocol is out of
//! scope (no client drops out in our simulator).

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// Deterministic pairwise mask for the (i, j) client pair, shaped like
/// `template`. Both parties derive the same mask from the shared seed.
fn pairwise_mask(template: &ParamVec, pair_seed: u64) -> ParamVec {
    let mut rng = Rng::seed_from_u64(pair_seed);
    template
        .iter()
        .map(|m| Matrix::from_fn(m.rows(), m.cols(), |_, _| rng.normal(0.0, 10.0)))
        .collect()
}

/// Produces the masked uploads for all clients: client `i` uploads
/// `w_i * W_i + sum_{j>i} M_ij - sum_{j<i} M_ji`. Summing all uploads
/// cancels every mask exactly.
pub fn masked_uploads(models: &[&ParamVec], weights: &[f64], session_seed: u64) -> Vec<ParamVec> {
    assert_eq!(
        models.len(),
        weights.len(),
        "secure_agg: weight count mismatch"
    );
    assert!(!models.is_empty(), "secure_agg: no models");
    let n = models.len();
    let mut uploads: Vec<ParamVec> = models
        .iter()
        .zip(weights)
        .map(|(m, &w)| m.iter().map(|mat| mat.scale(w)).collect())
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let pair_seed = session_seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i * n + j) as u64);
            let mask = pairwise_mask(models[0], pair_seed);
            for (u, m) in uploads[i].iter_mut().zip(&mask) {
                u.axpy(1.0, m);
            }
            for (u, m) in uploads[j].iter_mut().zip(&mask) {
                u.axpy(-1.0, m);
            }
        }
    }
    uploads
}

/// Server side: sums masked uploads and divides by the total weight,
/// recovering the exact weighted average without seeing any plaintext model.
pub fn aggregate_masked(uploads: &[ParamVec], total_weight: f64) -> ParamVec {
    assert!(!uploads.is_empty(), "secure_agg: no uploads");
    assert!(total_weight > 0.0, "secure_agg: zero total weight");
    let mut sum: ParamVec = uploads[0]
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    for u in uploads {
        for (s, m) in sum.iter_mut().zip(u) {
            s.axpy(1.0, m);
        }
    }
    for s in &mut sum {
        *s = s.scale(1.0 / total_weight);
    }
    sum
}

/// Full round: clients mask, server aggregates. Equivalent to
/// `param_weighted_average` but leaking no individual model.
pub fn secure_weighted_average(
    models: &[&ParamVec],
    weights: &[f64],
    session_seed: u64,
) -> ParamVec {
    let uploads = masked_uploads(models, weights, session_seed);
    let total: f64 = weights.iter().sum();
    aggregate_masked(&uploads, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_tensor::optim::param_weighted_average;

    fn random_models(n: usize, seed: u64) -> Vec<ParamVec> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                vec![
                    Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng),
                    Matrix::random_normal(1, 5, 0.0, 1.0, &mut rng),
                ]
            })
            .collect()
    }

    #[test]
    fn secure_average_matches_plain_average() {
        let models = random_models(5, 1);
        let refs: Vec<&ParamVec> = models.iter().collect();
        let weights = vec![3.0, 1.0, 2.0, 5.0, 4.0];
        let plain = param_weighted_average(&refs, &weights);
        let secure = secure_weighted_average(&refs, &weights, 42);
        for (a, b) in plain.iter().zip(&secure) {
            assert!(a.max_abs_diff(b) < 1e-9);
        }
    }

    #[test]
    fn masked_upload_hides_the_model() {
        let models = random_models(4, 2);
        let refs: Vec<&ParamVec> = models.iter().collect();
        let uploads = masked_uploads(&refs, &[1.0; 4], 7);
        // Each upload must be far from the plaintext model (mask std = 10).
        for (u, m) in uploads.iter().zip(&models) {
            let dist: f64 = u
                .iter()
                .zip(m.iter())
                .map(|(a, b)| a.sub(b).frobenius_norm().powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(dist > 5.0, "upload too close to plaintext: {dist}");
        }
    }

    #[test]
    fn masks_cancel_exactly_in_the_sum() {
        let models = random_models(6, 3);
        let refs: Vec<&ParamVec> = models.iter().collect();
        let uploads = masked_uploads(&refs, &[1.0; 6], 9);
        let sum = aggregate_masked(&uploads, 6.0);
        let plain = param_weighted_average(&refs, &[1.0; 6]);
        for (a, b) in plain.iter().zip(&sum) {
            assert!(a.max_abs_diff(b) < 1e-9);
        }
    }

    #[test]
    fn single_client_degenerates_to_identity() {
        let models = random_models(1, 4);
        let refs: Vec<&ParamVec> = models.iter().collect();
        let avg = secure_weighted_average(&refs, &[2.0], 11);
        for (a, b) in avg.iter().zip(&models[0]) {
            assert!(a.max_abs_diff(b) < 1e-9);
        }
    }
}
