//! Sybil-attack mitigation (paper §VI, citing Fung et al.'s "limitations of
//! federated learning in sybil settings"): a FoolsGold-style defense that
//! down-weights clients whose *cumulative update directions* are suspiciously
//! similar. Honest clients' updates diverge (different data); Sybil replicas
//! pushing a coordinated model point the same way round after round.

use fexiot_tensor::stats::cosine_similarity;

/// FoolsGold-style aggregation weights from per-client cumulative update
/// histories. Returns one weight in `[0, 1]` per client; coordinated groups
/// approach 0, independent clients approach 1.
pub fn foolsgold_weights(histories: &[Vec<f64>]) -> Vec<f64> {
    let n = histories.len();
    if n <= 1 {
        return vec![1.0; n];
    }
    // Pairwise cosine similarity matrix.
    let mut sim = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && !histories[i].is_empty() && !histories[j].is_empty() {
                sim[i][j] = cosine_similarity(&histories[i], &histories[j]);
            }
        }
    }
    // Per-client maximum similarity.
    let maxcs: Vec<f64> = (0..n)
        .map(|i| sim[i].iter().cloned().fold(0.0f64, f64::max))
        .collect();
    // Pardoning (FoolsGold): an honest client i that happens to resemble a
    // Sybil j is pardoned by rescaling sim[i][j] when maxcs_i < maxcs_j.
    #[allow(clippy::needless_range_loop)] // i/j index the similarity matrix
    for i in 0..n {
        for j in 0..n {
            if i != j && maxcs[j] > maxcs[i] && maxcs[j] > 0.0 {
                sim[i][j] *= maxcs[i] / maxcs[j];
            }
        }
    }
    let cs: Vec<f64> = (0..n)
        .map(|i| sim[i].iter().cloned().fold(0.0f64, f64::max))
        .collect();
    let mut wv: Vec<f64> = cs.iter().map(|&c| (1.0 - c).clamp(0.0, 1.0)).collect();
    // Renormalize to [0, 1] by the max, then logit-sharpen (FoolsGold Eq. 5).
    let max_wv = wv.iter().cloned().fold(0.0, f64::max);
    if max_wv > 0.0 {
        for w in &mut wv {
            *w /= max_wv;
        }
    }
    for w in &mut wv {
        if *w >= 1.0 {
            *w = 1.0;
            continue;
        }
        if *w <= 0.0 {
            *w = 0.0;
            continue;
        }
        // logit(w) scaled into [0,1] with saturation.
        let logit = (*w / (1.0 - *w)).ln() * 0.5 + 0.5;
        *w = logit.clamp(0.0, 1.0);
    }
    wv
}

/// Convenience: detects the indices whose weight falls below `threshold`.
pub fn flag_sybils(histories: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    foolsgold_weights(histories)
        .iter()
        .enumerate()
        .filter(|(_, &w)| w < threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_tensor::rng::Rng;

    fn random_direction(dim: usize, rng: &mut Rng) -> Vec<f64> {
        (0..dim).map(|_| rng.standard_normal()).collect()
    }

    #[test]
    fn sybil_pack_is_downweighted() {
        let mut rng = Rng::seed_from_u64(1);
        let dim = 64;
        let sybil_dir = random_direction(dim, &mut rng);
        let mut histories: Vec<Vec<f64>> = Vec::new();
        // Three Sybils: same direction with tiny jitter.
        for _ in 0..3 {
            histories.push(
                sybil_dir
                    .iter()
                    .map(|v| v + rng.normal(0.0, 0.01))
                    .collect(),
            );
        }
        // Four honest clients: independent directions.
        for _ in 0..4 {
            histories.push(random_direction(dim, &mut rng));
        }
        let w = foolsgold_weights(&histories);
        for (i, &wi) in w.iter().enumerate().take(3) {
            assert!(wi < 0.2, "sybil {i} weight {wi}");
        }
        for (i, &wi) in w.iter().enumerate().skip(3) {
            assert!(wi > 0.5, "honest {i} weight {wi}");
        }
        let flagged = flag_sybils(&histories, 0.2);
        assert_eq!(flagged, vec![0, 1, 2]);
    }

    #[test]
    fn all_honest_clients_keep_high_weights() {
        let mut rng = Rng::seed_from_u64(2);
        let histories: Vec<Vec<f64>> = (0..6).map(|_| random_direction(128, &mut rng)).collect();
        let w = foolsgold_weights(&histories);
        assert!(w.iter().all(|&x| x > 0.4), "{w:?}");
    }

    #[test]
    fn single_client_is_trusted() {
        let histories = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(foolsgold_weights(&histories), vec![1.0]);
    }

    #[test]
    fn empty_histories_do_not_panic() {
        let histories = vec![Vec::new(), vec![1.0, 0.0]];
        let w = foolsgold_weights(&histories);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|v| v.is_finite()));
    }
}
