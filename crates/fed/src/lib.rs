//! # fexiot-fed
//!
//! Federated-learning simulator for the FexIoT reproduction: clients holding
//! non-i.i.d. interaction-graph datasets, local contrastive GNN training, a
//! server implementing FedAvg / FMTL / GCFL+ / the paper's layer-wise
//! recursive clustering (Algorithm 1), and byte-level communication
//! accounting for the Fig. 7 cost analysis.

pub mod client;
pub mod comm;
pub mod dp;
pub mod faults;
pub mod secure_agg;
pub mod sim;
pub mod strategy;
pub mod sybil;
pub mod topology;

pub use client::Client;
pub use comm::CommStats;
pub use dp::{DpConfig, PrivacyAccountant};
pub use faults::{AggRoundFaults, AggStatus, Corruption, FaultInjector, FaultPlan, Participation, RoundFaults};
pub use secure_agg::secure_weighted_average;
pub use sim::{FedConfig, FedError, FedSim, RoundReport, RoundTelemetry};
pub use topology::{ClientSampler, Failover, Sampling, Topology};
pub use strategy::Strategy;
pub use sybil::{flag_sybils, foolsgold_weights};
