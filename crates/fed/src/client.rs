//! A federated client: one household holding its own interaction graphs, a
//! local copy of the shared GNN representation model, and a private linear
//! classification head (paper §III-B: "each client reserves two models").

use fexiot_gnn::{embed_all, head_features_all, train_contrastive, ContrastiveConfig, Encoder};
use fexiot_graph::GraphDataset;
use fexiot_ml::{Metrics, SgdClassifier, SgdConfig};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::{param_sub, ParamVec};

/// One simulated household.
pub struct Client {
    pub id: usize,
    pub encoder: Encoder,
    pub data: GraphDataset,
    /// Binary labels aligned with `data.graphs` (head training/eval).
    pub labels: Vec<usize>,
    /// Fine-grained classes (contrastive representation training).
    pub classes: Vec<usize>,
    /// The model update `W_after - W_before` of the last local round.
    pub last_delta: Option<ParamVec>,
    /// Flattened update history (most recent last), for GCFL+-style
    /// gradient-sequence clustering.
    pub update_history: Vec<Vec<f64>>,
    head: Option<SgdClassifier>,
}

impl Client {
    pub fn new(id: usize, encoder: Encoder, data: GraphDataset) -> Self {
        let labels = data.graphs.iter().map(GraphDataset::binary_label).collect();
        let classes = data.graphs.iter().map(GraphDataset::class_of).collect();
        Self {
            id,
            encoder,
            data,
            labels,
            classes,
            last_delta: None,
            update_history: Vec::new(),
            head: None,
        }
    }

    /// Number of local graphs (the FedAvg weight `|G_ci|`).
    pub fn sample_count(&self) -> usize {
        self.data.len()
    }

    /// One round of local contrastive training; records the parameter delta.
    pub fn local_train(&mut self, config: &ContrastiveConfig) -> f64 {
        let before = self.encoder.params().clone();
        let mut cfg = config.clone();
        // Decorrelate pair sampling across clients and rounds.
        cfg.seed ^= (self.id as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let loss = train_contrastive(&mut self.encoder, &self.data.graphs, &self.classes, &cfg);
        let delta = param_sub(self.encoder.params(), &before);
        let mut flat = Vec::new();
        for m in &delta {
            flat.extend_from_slice(m.as_slice());
        }
        self.update_history.push(flat);
        if self.update_history.len() > 8 {
            self.update_history.remove(0);
        }
        self.last_delta = Some(delta);
        loss
    }

    /// [`Client::local_train`] with client-side instrumentation recorded on
    /// `obs` (in the simulator this is the client's own child registry, later
    /// merged into the round trace): a `fed.client.local_train` span, the
    /// wall-clock `fed.client.step_us` histogram (timing data by the `_us`
    /// naming convention, so deterministic exports drop it), and the
    /// deterministic `fed.client.update_norm` histogram.
    pub fn local_train_traced(
        &mut self,
        config: &ContrastiveConfig,
        obs: &std::sync::Arc<fexiot_obs::Registry>,
    ) -> f64 {
        let started = std::time::Instant::now();
        let loss = {
            let _s = obs.span("fed.client.local_train");
            self.local_train(config)
        };
        obs.hist_record(
            "fed.client.step_us",
            fexiot_obs::buckets::TIME_US,
            started.elapsed().as_micros().min(u64::MAX as u128) as f64,
        );
        if let Some(d) = &self.last_delta {
            obs.hist_record(
                "fed.client.update_norm",
                fexiot_obs::buckets::NORM,
                fexiot_tensor::optim::param_norm(d),
            );
        }
        loss
    }

    /// Privatizes the last recorded update in place (paper §VI, differential
    /// privacy): the model the server will read becomes
    /// `W_before + clip_and_noise(ΔW)`. The recorded delta and the update
    /// history are replaced with the privatized versions (that is all the
    /// server may ever observe).
    pub fn privatize_last_update(
        &mut self,
        config: &crate::dp::DpConfig,
        rng: &mut fexiot_tensor::rng::Rng,
    ) {
        let Some(delta) = self.last_delta.clone() else {
            return;
        };
        // W_before = W_after - delta.
        let mut before = self.encoder.params().clone();
        for (b, d) in before.iter_mut().zip(&delta) {
            b.axpy(-1.0, d);
        }
        let mut private = delta;
        crate::dp::privatize_update(&mut private, config, rng);
        let mut new_params = before;
        for (p, d) in new_params.iter_mut().zip(&private) {
            p.axpy(1.0, d);
        }
        self.encoder.set_params(new_params);
        let mut flat = Vec::new();
        for m in &private {
            flat.extend_from_slice(m.as_slice());
        }
        if let Some(last) = self.update_history.last_mut() {
            *last = flat;
        }
        self.last_delta = Some(private);
        self.head = None;
    }

    /// Installs aggregated global weights (federated download).
    pub fn install(&mut self, params: ParamVec) {
        self.encoder.set_params(params);
        self.head = None; // Representations moved; the head must be refit.
    }

    /// Installs a single layer's aggregated matrices (FexIoT layer-wise sync).
    /// `offset` is the index of the layer's first matrix in the parameter list.
    pub fn install_layer(&mut self, offset: usize, layer: &[Matrix]) {
        let params = self.encoder.params_mut();
        for (i, m) in layer.iter().enumerate() {
            assert_eq!(
                params[offset + i].shape(),
                m.shape(),
                "install_layer: shape mismatch"
            );
            params[offset + i] = m.clone();
        }
        self.head = None;
    }

    /// Trains the private linear head on local representations, with
    /// inverse-frequency class weights (the paper's weighted loss).
    pub fn fit_head(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let x = head_features_all(&self.encoder, &self.data.graphs);
        let pos = self.labels.iter().filter(|&&l| l == 1).count();
        let neg = self.labels.len() - pos;
        let class_weights = if pos > 0 && neg > 0 {
            let total = self.labels.len() as f64;
            vec![total / (2.0 * neg as f64), total / (2.0 * pos as f64)]
        } else {
            Vec::new()
        };
        self.head = Some(SgdClassifier::fit(
            &x,
            &self.labels,
            SgdConfig {
                class_weights,
                seed: self.id as u64,
                ..Default::default()
            },
        ));
    }

    /// True once a head has been trained since the last weight install.
    pub fn has_head(&self) -> bool {
        self.head.is_some()
    }

    /// Predicts binary labels for a set of graphs (fits the head on demand).
    pub fn predict(&mut self, test: &GraphDataset) -> Vec<usize> {
        if self.head.is_none() {
            self.fit_head();
        }
        match (&self.head, test.is_empty()) {
            (Some(head), false) => {
                let x = head_features_all(&self.encoder, &test.graphs);
                head.predict(&x)
            }
            _ => vec![0; test.len()],
        }
    }

    /// Evaluates on a test set.
    pub fn evaluate(&mut self, test: &GraphDataset) -> Metrics {
        let truth: Vec<usize> = test.graphs.iter().map(GraphDataset::binary_label).collect();
        Metrics::from_predictions(&self.predict(test), &truth)
    }

    /// The client's latest decision scores on its own data (used by the
    /// drift-analysis pipeline).
    pub fn local_embeddings(&self) -> Matrix {
        embed_all(&self.encoder, &self.data.graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_gnn::Gin;
    use fexiot_graph::{generate_dataset, DatasetConfig};
    use fexiot_tensor::rng::Rng;

    fn setup(seed: u64) -> (Client, GraphDataset) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.7, &mut rng);
        let d = train.graphs[0].nodes[0].features.len();
        let enc = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
        (Client::new(0, enc, train), test)
    }

    #[test]
    fn local_training_records_delta() {
        let (mut client, _) = setup(1);
        assert!(client.last_delta.is_none());
        let cfg = ContrastiveConfig {
            epochs: 1,
            pairs_per_epoch: 8,
            ..Default::default()
        };
        client.local_train(&cfg);
        let delta = client.last_delta.as_ref().unwrap();
        let norm: f64 = delta.iter().map(|m| m.frobenius_norm()).sum();
        assert!(norm > 0.0, "training produced no update");
        assert_eq!(client.update_history.len(), 1);
    }

    #[test]
    fn head_beats_coin_flip_on_train_data() {
        let (mut client, _) = setup(2);
        let cfg = ContrastiveConfig {
            epochs: 6,
            pairs_per_epoch: 48,
            ..Default::default()
        };
        client.local_train(&cfg);
        let train = client.data.clone();
        let m = client.evaluate(&train);
        assert!(m.accuracy > 0.55, "train accuracy {}", m.accuracy);
    }

    #[test]
    fn install_resets_head() {
        let (mut client, test) = setup(3);
        let _ = client.evaluate(&test);
        assert!(client.has_head());
        let params = client.encoder.params().clone();
        client.install(params);
        assert!(!client.has_head());
    }

    #[test]
    fn install_layer_overwrites_slice() {
        let (mut client, _) = setup(4);
        let zeroed: Vec<Matrix> = client.encoder.params()[..2]
            .iter()
            .map(|m| Matrix::zeros(m.rows(), m.cols()))
            .collect();
        client.install_layer(0, &zeroed);
        assert_eq!(client.encoder.params()[0].sum(), 0.0);
        assert_eq!(client.encoder.params()[1].sum(), 0.0);
        assert!(client.encoder.params()[2].sum() != 0.0);
    }
}
