//! Fleet-scale federation structure: per-round client sampling and the
//! hierarchical edge-aggregator tier.
//!
//! A 2000-home fleet never trains every client every round. The server draws
//! a **cohort** per round — a fraction or fixed-k subset, weighted by sample
//! count so data-rich homes are seen proportionally more often — from a
//! dedicated seeded RNG stream ([`ClientSampler`]), so sampling randomness
//! never perturbs training or fault randomness and `Sampling::Full` leaves
//! the simulator bit-identical to the pre-sampling implementation (locked by
//! `tests/golden.rs`).
//!
//! [`Topology`] describes the communication tree: with `aggregators >= 2`,
//! each client reports to an edge aggregator (`client % aggregators`) that
//! pre-aggregates its cohort's updates and forwards **one** priced message to
//! the server per round. Because the global aggregate is a weighted average,
//! pre-aggregation at the edge is mathematically the identity — the hierarchy
//! changes what moves over the trunk, not the model — so the simulator prices
//! the aggregator hop in `CommStats` while computing the aggregate globally.
//! Aggregators themselves can fail (see `faults.rs`); [`Failover`] says
//! whether an orphaned cohort is reassigned to a surviving aggregator or sits
//! the round out.

use fexiot_tensor::rng::Rng;

/// XOR'd into the federation seed to derive the sampler's dedicated stream.
const SAMPLER_STREAM: u64 = 0xC0_40_75_7A_17;

/// Per-round cohort selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Every client participates every round (the pre-fleet behavior).
    Full,
    /// Sample `ceil(fraction * n)` clients per round (clamped to `1..=n`).
    /// A fraction `>= 1.0` is equivalent to `Full`.
    Fraction(f64),
    /// Sample exactly `k` clients per round (clamped to `1..=n`). A `k >= n`
    /// is equivalent to `Full`.
    FixedK(usize),
}

impl Sampling {
    /// Cohort size for an `n`-client fleet. Never zero for `n > 0`.
    pub fn cohort_size(&self, n: usize) -> usize {
        match *self {
            Sampling::Full => n,
            Sampling::Fraction(f) => {
                if f >= 1.0 {
                    n
                } else {
                    ((f.max(0.0) * n as f64).ceil() as usize).clamp(1, n.max(1))
                }
            }
            Sampling::FixedK(k) => k.clamp(1, n.max(1)),
        }
    }

    /// True when this policy actually subsamples an `n`-client fleet (and
    /// therefore consumes sampler RNG draws).
    pub fn is_active(&self, n: usize) -> bool {
        self.cohort_size(n) < n
    }
}

/// What happens to an aggregator's cohort when the aggregator is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failover {
    /// Reroute the cohort to the next surviving aggregator (ring order).
    Reassign,
    /// The cohort sits the round out (no training, no traffic).
    Skip,
}

/// The federation's communication tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Edge aggregators between clients and the server. `<= 1` means the
    /// flat client↔server topology (no aggregator hop is priced).
    pub aggregators: usize,
    pub failover: Failover,
}

impl Topology {
    /// The flat topology: clients talk to the server directly.
    pub fn flat() -> Self {
        Self {
            aggregators: 1,
            failover: Failover::Reassign,
        }
    }

    /// A hierarchical topology with `aggregators` edge aggregators.
    pub fn hierarchical(aggregators: usize, failover: Failover) -> Self {
        Self {
            aggregators: aggregators.max(1),
            failover,
        }
    }

    /// True when an aggregator tier actually sits between clients and server.
    pub fn is_hierarchical(&self) -> bool {
        self.aggregators >= 2
    }

    /// The home aggregator serving `client` (stable round-robin assignment).
    pub fn aggregator_of(&self, client: usize) -> usize {
        client % self.aggregators.max(1)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::flat()
    }
}

/// Draws each round's cohort from a dedicated seeded RNG stream.
///
/// Weighted sampling **without replacement**: each pick is proportional to
/// the remaining clients' weights (sample counts), so data-rich clients are
/// overrepresented per round but every positive-weight client keeps a
/// nonzero chance. Zero-weight clients are only drawn once every
/// positive-weight client is already in the cohort. The cohort is returned
/// sorted ascending so downstream iteration (training order, obs absorption,
/// loss summation) is deterministic in client-id order.
#[derive(Debug, Clone)]
pub struct ClientSampler {
    sampling: Sampling,
    rng: Rng,
}

impl ClientSampler {
    pub fn new(sampling: Sampling, seed: u64) -> Self {
        Self {
            sampling,
            rng: Rng::seed_from_u64(seed ^ SAMPLER_STREAM),
        }
    }

    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// Draws one round's cohort (sorted ascending). With an inactive policy
    /// (`Full`, or a fraction/k covering everyone) no RNG is consumed and
    /// the cohort is all of `0..n` — bit-exactly the pre-sampling behavior.
    pub fn draw_cohort(&mut self, weights: &[f64]) -> Vec<usize> {
        let n = weights.len();
        let k = self.sampling.cohort_size(n).min(n);
        if k >= n {
            return (0..n).collect();
        }
        let mut remaining: Vec<f64> = weights.iter().map(|&w| w.max(0.0)).collect();
        let mut chosen = vec![false; n];
        let mut cohort = Vec::with_capacity(k);
        for _ in 0..k {
            let total: f64 = remaining.iter().sum();
            let pick = if total > 0.0 {
                let mut t = self.rng.f64() * total;
                let mut pick = None;
                for (i, &w) in remaining.iter().enumerate() {
                    if w <= 0.0 {
                        continue;
                    }
                    t -= w;
                    if t <= 0.0 {
                        pick = Some(i);
                        break;
                    }
                }
                // Float drift can leave t marginally positive after the last
                // positive weight; fall back to the last eligible client.
                pick.unwrap_or_else(|| {
                    remaining
                        .iter()
                        .rposition(|&w| w > 0.0)
                        .expect("positive total implies a positive weight")
                })
            } else {
                // All remaining weights are zero: uniform over the unchosen.
                let open: Vec<usize> =
                    (0..n).filter(|&i| !chosen[i]).collect();
                open[self.rng.usize(open.len())]
            };
            chosen[pick] = true;
            remaining[pick] = 0.0;
            cohort.push(pick);
        }
        cohort.sort_unstable();
        cohort
    }

    /// Checkpoint support: the sampler's RNG stream.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a [`ClientSampler::state`] snapshot.
    pub fn restore_state(&mut self, rng: [u64; 4]) {
        self.rng = Rng::from_state(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sampling_is_inactive_and_consumes_no_rng() {
        let mut s = ClientSampler::new(Sampling::Full, 7);
        let before = s.state();
        assert_eq!(s.draw_cohort(&[1.0; 5]), vec![0, 1, 2, 3, 4]);
        assert_eq!(s.state(), before, "Full must not touch the RNG stream");
        assert!(!Sampling::Full.is_active(5));
        // Covering policies degenerate to Full.
        assert!(!Sampling::Fraction(1.0).is_active(5));
        assert!(!Sampling::FixedK(9).is_active(5));
        let mut s = ClientSampler::new(Sampling::FixedK(9), 7);
        let before = s.state();
        assert_eq!(s.draw_cohort(&[1.0; 5]).len(), 5);
        assert_eq!(s.state(), before);
    }

    #[test]
    fn cohort_sizes_clamp_sanely() {
        assert_eq!(Sampling::Fraction(0.5).cohort_size(10), 5);
        assert_eq!(Sampling::Fraction(0.01).cohort_size(10), 1);
        assert_eq!(Sampling::Fraction(0.0).cohort_size(10), 1);
        assert_eq!(Sampling::Fraction(2.0).cohort_size(10), 10);
        assert_eq!(Sampling::FixedK(3).cohort_size(10), 3);
        assert_eq!(Sampling::FixedK(0).cohort_size(10), 1);
        assert_eq!(Sampling::FixedK(99).cohort_size(10), 10);
    }

    #[test]
    fn cohorts_are_sorted_distinct_and_seed_deterministic() {
        let weights: Vec<f64> = (0..50).map(|i| (i % 7 + 1) as f64).collect();
        let draw = |mut s: ClientSampler| {
            (0..10).map(|_| s.draw_cohort(&weights)).collect::<Vec<_>>()
        };
        let a = draw(ClientSampler::new(Sampling::FixedK(8), 42));
        let b = draw(ClientSampler::new(Sampling::FixedK(8), 42));
        assert_eq!(a, b, "same seed, same cohorts");
        for cohort in &a {
            assert_eq!(cohort.len(), 8);
            assert!(cohort.windows(2).all(|w| w[0] < w[1]), "{cohort:?}");
        }
        let c = draw(ClientSampler::new(Sampling::FixedK(8), 43));
        assert_ne!(a, c, "different seed should shift cohorts");
    }

    #[test]
    fn weighting_prefers_heavy_clients() {
        // Client 0 holds 100x the data of everyone else: over many rounds it
        // must appear in nearly every cohort.
        let mut weights = vec![1.0; 20];
        weights[0] = 100.0;
        let mut s = ClientSampler::new(Sampling::FixedK(4), 1);
        let hits = (0..100)
            .filter(|_| s.draw_cohort(&weights).contains(&0))
            .count();
        assert!(hits > 80, "heavy client sampled only {hits}/100 rounds");
    }

    #[test]
    fn zero_weight_clients_yield_to_positive_weight_ones() {
        // 3 positive-weight clients, k = 3: the zero-weight ones never show.
        let weights = [0.0, 2.0, 0.0, 1.0, 3.0];
        let mut s = ClientSampler::new(Sampling::FixedK(3), 5);
        for _ in 0..50 {
            assert_eq!(s.draw_cohort(&weights), vec![1, 3, 4]);
        }
        // All-zero weights still fill the cohort (uniform fallback).
        let mut s = ClientSampler::new(Sampling::FixedK(2), 5);
        let cohort = s.draw_cohort(&[0.0; 6]);
        assert_eq!(cohort.len(), 2);
        assert!(cohort.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sampler_state_roundtrips() {
        let weights: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let mut a = ClientSampler::new(Sampling::Fraction(0.2), 9);
        for _ in 0..3 {
            a.draw_cohort(&weights);
        }
        let snap = a.state();
        let mut b = ClientSampler::new(Sampling::Fraction(0.2), 9);
        b.restore_state(snap);
        for _ in 0..5 {
            assert_eq!(a.draw_cohort(&weights), b.draw_cohort(&weights));
        }
    }

    #[test]
    fn topology_assignment_is_stable_round_robin() {
        let t = Topology::hierarchical(3, Failover::Skip);
        assert!(t.is_hierarchical());
        assert_eq!(t.aggregator_of(0), 0);
        assert_eq!(t.aggregator_of(4), 1);
        assert_eq!(t.aggregator_of(5), 2);
        let flat = Topology::flat();
        assert!(!flat.is_hierarchical());
        assert_eq!(flat.aggregator_of(17), 0);
    }
}
