//! The federated training simulator: drives client local training, runs the
//! configured aggregation strategy, and accounts every byte moved.
//!
//! With a non-trivial [`FaultPlan`] the simulator also injects the failure
//! modes real smart-home fleets exhibit — dropout, crash-and-rejoin,
//! stragglers, lossy links, corrupted updates — and survives them: partial
//! participation with weight renormalization over the surviving subset,
//! bounded retry-with-backoff priced into [`CommStats`], staleness-bounded
//! decayed acceptance of late updates, NaN/Inf + norm-guard quarantine before
//! anything reaches the aggregator or the trust scorer, and round-level
//! checkpoint/restore. `FaultPlan::none()` keeps the simulator bit-identical
//! to the fault-free implementation (locked by `tests/golden.rs`).

use crate::client::Client;
use crate::comm::CommStats;
use crate::faults::{
    backoff_ticks_for, straggler_wait, AggRoundFaults, AggStatus, FaultInjector, FaultPlan,
    Participation, RoundFaults,
};
use crate::strategy::Strategy;
use crate::topology::{ClientSampler, Failover, Sampling, Topology};
use fexiot_gnn::ContrastiveConfig;
use fexiot_graph::GraphDataset;
use fexiot_ml::{binary_cosine_split, Metrics};
use fexiot_obs::{
    CausalBuilder, CausalGraph, ClientRoundCost, CriticalPathEntry, FleetTelemetry, Registry,
    RoundCost,
};
use std::sync::Arc;
use fexiot_tensor::codec::{ByteReader, ByteWriter, CodecError};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::{
    param_bytes, param_flatten, param_is_finite, param_norm, param_weighted_average, ParamVec,
};
use fexiot_tensor::rng::Rng;
use fexiot_tensor::stats::cosine_similarity;

/// Federated-simulation configuration.
#[derive(Debug, Clone)]
pub struct FedConfig {
    pub strategy: Strategy,
    pub rounds: usize,
    /// Local contrastive training config per round.
    pub local: ContrastiveConfig,
    /// Differential privacy on client updates (paper §VI extension).
    pub dp: Option<crate::dp::DpConfig>,
    /// Pairwise-masked secure aggregation (paper §VI extension). Changes
    /// what the server can observe, not the aggregate itself.
    pub secure_aggregation: bool,
    /// FoolsGold-style Sybil down-weighting (paper §VI extension).
    pub sybil_defense: bool,
    /// FexIoT layer cadence: when true (default), layer `l` syncs every
    /// `l + 1` rounds (the Fig. 7 communication saving); when false, every
    /// layer syncs every round (ablation knob).
    pub layer_cadence: bool,
    /// Failure processes to inject each round (`FaultPlan::none()` = off).
    pub faults: FaultPlan,
    /// Per-round cohort selection (`Sampling::Full` = everyone, the
    /// pre-fleet behavior). Drawn from a dedicated seeded stream, weighted
    /// by client sample counts.
    pub sampling: Sampling,
    /// Communication tree: flat client↔server, or 2+ edge aggregators that
    /// pre-aggregate cohort updates ([`Topology`]). `LocalOnly` ignores the
    /// tier (there is no server to forward to).
    pub topology: Topology,
    /// Minimum fraction of the sampled cohort's *sample-count weight* that
    /// must report for the round to commit; below it the round degrades to a
    /// recorded no-op (uploads priced, nothing aggregated). `0.0` disables
    /// the gate.
    pub quorum: f64,
    /// Round deadline in simulated ticks: a contributor whose report path
    /// (straggler wait + upload backoff + aggregator delay) exceeds this is
    /// dropped from the round. `None` disables the deadline.
    pub deadline_ticks: Option<usize>,
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::fexiot_default(),
            rounds: 10,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 32,
                ..Default::default()
            },
            dp: None,
            secure_aggregation: false,
            sybil_defense: false,
            layer_cadence: true,
            faults: FaultPlan::none(),
            sampling: Sampling::Full,
            topology: Topology::flat(),
            quorum: 0.0,
            deadline_ticks: None,
            seed: 0,
        }
    }
}

/// Construction errors for [`FedSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedError {
    /// A federation needs at least one client.
    NoClients,
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::NoClients => write!(f, "fed: no clients"),
        }
    }
}

impl std::error::Error for FedError {}

/// Per-round degradation telemetry. Every *sampled* client lands in exactly
/// one of `participants` / `dropped` / `quarantined`, so those three always
/// sum to `sampled` (which equals `clients` when sampling is off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundTelemetry {
    /// Federation size this round.
    pub clients: usize,
    /// Cohort size: clients selected by the sampler this round.
    pub sampled: usize,
    /// Clients whose update entered aggregation (includes stale-accepted).
    pub participants: usize,
    /// Sampled clients that contributed nothing: offline, crashed,
    /// too-stale, past the round deadline, behind a dead aggregator, or
    /// upload lost after every retry.
    pub dropped: usize,
    /// Clients whose delivered update failed validation (NaN/Inf or norm
    /// guard) and was excluded before aggregation.
    pub quarantined: usize,
    /// Subset of `participants` accepted late with decayed weight.
    pub stale_accepted: usize,
    /// Message retransmissions this round (also priced in `CommStats`).
    pub retried_messages: usize,
    /// Messages lost for good after exhausting the retry budget.
    pub lost_messages: usize,
    /// Simulated ticks spent in retry backoff this round.
    pub backoff_ticks: usize,
    /// Contributors excluded because their report path missed the round
    /// deadline (subset of `dropped`).
    pub deadline_missed: usize,
    /// Edge aggregators in the topology (1 = flat).
    pub aggregators: usize,
    /// Edge aggregators down this round (dropout or crash window).
    pub agg_down: usize,
    /// Cohort clients rerouted to a surviving aggregator after their home
    /// aggregator went down (`Failover::Reassign` only).
    pub reassigned: usize,
    /// The round failed its quorum gate and degraded to a recorded no-op:
    /// uploads were priced but nothing was aggregated or installed.
    pub quorum_aborted: bool,
    /// SLO rules failing at this round's evaluation (always 0 when no
    /// fleet telemetry is attached; see [`FedSim::attach_telemetry`]).
    pub slo_failures: usize,
}

/// Per-round report.
#[derive(Debug, Clone)]
pub struct RoundReport {
    pub round: usize,
    pub mean_loss: f64,
    pub cumulative_comm: CommStats,
    /// Degradation telemetry (all zeros except `clients`/`sampled`/
    /// `participants` when faults are off).
    pub faults: RoundTelemetry,
    /// First violated [`CommStats::validate`] invariant, if any. Checked
    /// every round in release builds too — a pricing bug fails closed here
    /// instead of silently corrupting the Fig. 7 accounting.
    pub comm_error: Option<String>,
}

/// Server-side view of one round under fault injection: who contributes,
/// what the server actually received, and at what weight.
struct RoundState {
    faults: RoundFaults,
    /// Eligible for aggregation: delivered a valid (non-quarantined) update.
    contributors: Vec<bool>,
    /// Server-side copies that differ from the client's true parameters
    /// (in-flight corruption). `None` = received verbatim.
    observed: Vec<Option<ParamVec>>,
    /// Aggregation-weight multiplier from staleness decay (1.0 = on time).
    stale_weight: Vec<f64>,
}

impl RoundState {
    fn clean(n: usize) -> Self {
        Self {
            faults: RoundFaults::clean(n),
            contributors: vec![true; n],
            observed: vec![None; n],
            stale_weight: vec![1.0; n],
        }
    }

    /// What the server received from client `c` (corrupted copy if the wire
    /// damaged it, the client's own parameters otherwise).
    fn observed_params<'a>(&'a self, clients: &'a [Client], c: usize) -> &'a ParamVec {
        self.observed[c]
            .as_ref()
            .unwrap_or_else(|| clients[c].encoder.params())
    }

    fn up_attempts(&self, c: usize) -> usize {
        self.faults.up_attempts[c].unwrap_or(1)
    }
}

/// Fleet-structure context for one round, fixed before any update is
/// received: who was sampled, which aggregator serves each client (after
/// failover), how late that aggregator is, and the round deadline.
struct RoundCtx {
    /// In this round's cohort.
    sampled: Vec<bool>,
    /// Serving aggregator per client after failover; `None` = no path to
    /// the server this round (home aggregator down, `Failover::Skip` or no
    /// survivor). Always `Some(0)` on flat topologies.
    route: Vec<Option<usize>>,
    /// Straggler delay of the serving aggregator (0 when on time or flat).
    agg_delay: Vec<usize>,
    deadline: Option<usize>,
}

impl RoundCtx {
    /// The pre-fleet context: everyone sampled, flat routing, no deadline.
    fn full(n: usize) -> Self {
        Self {
            sampled: vec![true; n],
            route: vec![Some(0); n],
            agg_delay: vec![0; n],
            deadline: None,
        }
    }
}

/// The whole federation: clients + server state.
pub struct FedSim {
    pub clients: Vec<Client>,
    pub comm: CommStats,
    config: FedConfig,
    /// Persistent cluster state for FMTL / GCFL+.
    clusters: Vec<Vec<usize>>,
    /// `(offset, matrix_count)` per encoder layer, bottom-up.
    layer_spans: Vec<(usize, usize)>,
    /// Per-client trust weights from the Sybil defense (1.0 = trusted).
    trust: Vec<f64>,
    /// Privacy accountant, present when DP is enabled.
    accountant: Option<crate::dp::PrivacyAccountant>,
    /// Fault-realization source; draws from its own RNG stream so fault
    /// randomness never perturbs training randomness.
    injector: FaultInjector,
    /// Per-round cohort source; owns a third dedicated RNG stream so
    /// sampling randomness perturbs neither training nor fault randomness.
    sampler: ClientSampler,
    /// Observability registry backing [`RoundTelemetry`]: degradation events
    /// increment `fed.sim.*` counters here, and the round report reads the
    /// per-round deltas back. Private and always-enabled by default so
    /// concurrent simulations in one process never share counters;
    /// [`FedSim::attach_obs`] substitutes a shared registry.
    obs: Arc<Registry>,
    /// One child registry per client: client-side instrumentation (the
    /// `fed.client.*` span and histograms) records here in isolation, and
    /// each client's snapshot is merged into the main registry right after
    /// its training — federated trace merging. Reset after every merge.
    client_obs: Vec<Arc<Registry>>,
    /// Fleet-health telemetry: per-round time-series samples plus optional
    /// SLO evaluation, snapshotted at the end of every round. Pure obs data
    /// like `cost_acc` — never fed back into simulation state, and not
    /// checkpointed. Boxed so the common no-telemetry path pays one pointer.
    telemetry: Option<Box<FleetTelemetry>>,
    /// Per-client simulated-tick cost attribution for the round in flight.
    /// Pure obs data: integer bookkeeping on the side, never fed back into
    /// training or RNG state, and not checkpointed.
    cost_acc: Vec<ClientRoundCost>,
    /// Completed rounds' cost attribution, input to [`FedSim::critical_path`].
    round_costs: Vec<RoundCost>,
    /// Causal trace recorder ([`FedSim::enable_causal_trace`]): every fault
    /// realization mirrored as graph nodes/edges, built on the coordinator
    /// thread only. Pure obs data like `cost_acc` — never fed back into
    /// simulation state, and not checkpointed.
    causal: Option<Box<CausalBuilder>>,
    /// Dominant fault kind behind the latest failing SLO evaluation
    /// (requires both telemetry and causal tracing; `None` while passing).
    last_root_cause: Option<String>,
    rng: Rng,
    round: usize,
}

/// Counters that back [`RoundTelemetry`]. A round report is the delta of
/// these between round start and round end, so the reported values are
/// bit-identical to the hand-rolled accumulators they replaced (locked by
/// `tests/golden.rs`) while the registry keeps whole-run totals.
const ROUND_COUNTERS: [&str; 6] = [
    "fed.sim.participants",
    "fed.sim.quarantined",
    "fed.sim.stale_accepted",
    "fed.sim.retried_messages",
    "fed.sim.lost_messages",
    "fed.sim.backoff_ticks",
];

impl FedSim {
    /// Builds a federation. All clients must share the encoder architecture.
    ///
    /// # Panics
    /// Panics when `clients` is empty; use [`FedSim::try_new`] to get an
    /// error instead.
    pub fn new(clients: Vec<Client>, config: FedConfig) -> Self {
        Self::try_new(clients, config).expect("fed: no clients")
    }

    /// Fallible constructor: returns [`FedError::NoClients`] for an empty
    /// federation instead of panicking (an all-zero federation would
    /// otherwise produce NaN loss reports).
    pub fn try_new(clients: Vec<Client>, config: FedConfig) -> Result<Self, FedError> {
        if clients.is_empty() {
            return Err(FedError::NoClients);
        }
        let sizes = clients[0].encoder.layer_sizes();
        let mut layer_spans = Vec::with_capacity(sizes.len());
        let mut offset = 0;
        for s in sizes {
            layer_spans.push((offset, s));
            offset += s;
        }
        let all: Vec<usize> = (0..clients.len()).collect();
        let rng = Rng::seed_from_u64(config.seed);
        let trust = vec![1.0; clients.len()];
        let accountant = config
            .dp
            .as_ref()
            .map(|dp| crate::dp::PrivacyAccountant::new(dp.noise_multiplier));
        let injector = FaultInjector::new(config.faults.clone(), clients.len());
        let sampler = ClientSampler::new(config.sampling, config.seed);
        let client_obs = (0..clients.len()).map(|_| Arc::new(Registry::new())).collect();
        Ok(Self {
            clients,
            comm: CommStats::default(),
            config,
            clusters: vec![all],
            layer_spans,
            trust,
            accountant,
            injector,
            sampler,
            obs: Arc::new(Registry::new()),
            client_obs,
            telemetry: None,
            cost_acc: Vec::new(),
            round_costs: Vec::new(),
            causal: None,
            last_root_cause: None,
            rng,
            round: 0,
        })
    }

    /// Substitutes the simulator's private observability registry (for
    /// example with the process-global one, so a CLI run exports a single
    /// report covering pipeline + federation). The registry is force-enabled
    /// because [`RoundTelemetry`] is computed from its counters — a disabled
    /// registry would zero every fault report.
    pub fn attach_obs(&mut self, reg: Arc<Registry>) {
        reg.set_enabled(true);
        self.obs = reg;
    }

    /// The observability registry this simulator records into.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Attaches fleet-health telemetry: at the end of every round the
    /// simulator pushes its per-round `fed.round.*` samples into the store,
    /// snapshots the registry's deterministic metrics for the configured
    /// sample specs, and evaluates any SLO rules — the failing-rule count
    /// lands in [`RoundTelemetry::slo_failures`].
    pub fn attach_telemetry(&mut self, telemetry: FleetTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// The attached fleet telemetry, if any.
    pub fn telemetry(&self) -> Option<&FleetTelemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the fleet telemetry (for report export after the
    /// run).
    pub fn take_telemetry(&mut self) -> Option<FleetTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// Enables causal trace recording: from the next round on, every fault
    /// realization (dropout, crash/rejoin, stragglers, retries, quarantine,
    /// aggregator crash/reassign, deadline misses, quorum aborts) is
    /// mirrored as nodes and edges of a [`CausalGraph`] whose IDs derive
    /// from the run seed — byte-identical at any thread width. Pure obs
    /// data: like `cost_acc`, it never feeds back into simulation state and
    /// is not checkpointed.
    pub fn enable_causal_trace(&mut self, run: &str) {
        self.causal = Some(Box::new(CausalBuilder::new(
            run,
            self.config.seed,
            self.clients.len(),
        )));
    }

    /// Detaches and finalizes the causal trace, if recording was enabled.
    pub fn take_causal_trace(&mut self) -> Option<CausalGraph> {
        self.causal.take().map(|b| b.finish())
    }

    /// Dominant fault kind attributed to the latest failing SLO evaluation
    /// (`None` while rules pass, or when telemetry / causal tracing is off).
    pub fn last_root_cause(&self) -> Option<&str> {
        self.last_root_cause.as_deref()
    }

    /// Runs all configured rounds; returns per-round reports.
    pub fn run(&mut self) -> Vec<RoundReport> {
        (0..self.config.rounds).map(|_| self.run_round()).collect()
    }

    /// One federated round: local training, fault realization, validation,
    /// then aggregation over the surviving subset.
    pub fn run_round(&mut self) -> RoundReport {
        let n = self.clients.len();
        if n == 0 {
            // Unreachable through the constructors; kept as a hard guard so
            // an empty federation can never emit NaN (0.0 / 0) reports.
            self.round += 1;
            return RoundReport {
                round: self.round,
                mean_loss: 0.0,
                cumulative_comm: self.comm,
                faults: RoundTelemetry::default(),
                comm_error: None,
            };
        }
        let obs = Arc::clone(&self.obs);
        obs.mark(&format!("round[{}]", self.round));
        let _round_span = obs.span(format!("round[{}]", self.round));
        let base: Vec<u64> = ROUND_COUNTERS
            .iter()
            .map(|name| obs.counter_value(name))
            .collect();
        let deadline_base = obs.counter_value("fed.agg.deadline_missed");
        let fault_active = self.injector.plan().is_active();
        let comm_before = self.comm;
        let round_faults = if fault_active {
            self.injector.draw_round(self.round)
        } else {
            RoundFaults::clean(n)
        };

        // Fleet structure: draw this round's cohort (weighted by sample
        // count, from the sampler's own stream), realize aggregator faults,
        // and resolve failover routing. `Sampling::Full` + a flat topology
        // short-circuits to the pre-fleet context: no extra RNG draws, no
        // extra counters, bit-identical rounds (locked by `tests/golden.rs`).
        let topo = self.config.topology;
        // LocalOnly has no server, so there is nothing for an aggregator
        // tier to forward to; treat it as flat.
        let hierarchical =
            topo.is_hierarchical() && !matches!(self.config.strategy, Strategy::LocalOnly);
        let sampling_active = self.config.sampling.is_active(n);
        let mut ctx = RoundCtx::full(n);
        ctx.deadline = self.config.deadline_ticks;
        let cohort: Vec<usize> = if sampling_active {
            let weights: Vec<f64> =
                self.clients.iter().map(|c| c.sample_count() as f64).collect();
            let cohort = self.sampler.draw_cohort(&weights);
            ctx.sampled = vec![false; n];
            for &c in &cohort {
                ctx.sampled[c] = true;
            }
            obs.counter_add("fed.sim.sampled", cohort.len() as u64);
            cohort
        } else {
            (0..n).collect()
        };
        let agg_faults = if hierarchical && self.injector.plan().agg_faults_active() {
            self.injector.draw_agg_round(self.round, topo.aggregators)
        } else {
            AggRoundFaults::clean(topo.aggregators.max(1))
        };
        let mut agg_down = 0usize;
        let mut reassigned = 0usize;
        if hierarchical {
            let up: Vec<bool> = agg_faults
                .status
                .iter()
                .map(|s| !matches!(s, AggStatus::Down))
                .collect();
            agg_down = agg_faults.down_count();
            for &c in &cohort {
                let home = topo.aggregator_of(c);
                ctx.route[c] = Some(home);
                if up[home] {
                    continue;
                }
                ctx.route[c] = match topo.failover {
                    // Ring failover: the cohort reroutes to the next
                    // surviving aggregator clockwise from home.
                    Failover::Reassign => (1..topo.aggregators)
                        .map(|d| (home + d) % topo.aggregators)
                        .find(|&a| up[a])
                        .inspect(|_| reassigned += 1),
                    Failover::Skip => None,
                };
            }
            for &c in &cohort {
                if let Some(AggStatus::Straggler { delay }) =
                    ctx.route[c].map(|a| agg_faults.status[a])
                {
                    ctx.agg_delay[c] = delay;
                }
            }
            if agg_down > 0 {
                obs.counter_add("fed.agg.down", agg_down as u64);
            }
            if reassigned > 0 {
                obs.counter_add("fed.agg.reassigned", reassigned as u64);
            }
        }

        // Causal trace: mirror this round's fault realization as graph
        // nodes, on the coordinator thread in client/aggregator order. The
        // draws above are fixed before the training scatter, so the graph is
        // a pure function of the seed — byte-identical at any thread width.
        if self.causal.is_some() {
            let round = self.round;
            let injector = &self.injector;
            let cb = self.causal.as_deref_mut().expect("checked above");
            cb.begin_round(round);
            for c in 0..n {
                match round_faults.participation[c] {
                    // `Crashed` only ever comes from the multi-round crash
                    // ledger, so it is a crash window — not a transient drop.
                    Participation::Crashed => cb.client_crash(round, c),
                    Participation::Dropout => {
                        cb.client_up(round, c);
                        if ctx.sampled[c] {
                            cb.client_dropout(round, c);
                        }
                    }
                    _ => cb.client_up(round, c),
                }
            }
            if hierarchical {
                let aggs = topo.aggregators.max(1);
                let up: Vec<bool> = agg_faults
                    .status
                    .iter()
                    .map(|s| !matches!(s, AggStatus::Down))
                    .collect();
                let mut affected = vec![0u64; aggs];
                for &c in &cohort {
                    let home = topo.aggregator_of(c);
                    if !up[home] {
                        affected[home] += 1;
                    }
                }
                let mut down_nodes: Vec<Option<u64>> = vec![None; aggs];
                for (a, status) in agg_faults.status.iter().enumerate() {
                    match *status {
                        AggStatus::Down => {
                            let id = if injector.agg_crashed(a, round) {
                                cb.agg_crash(round, a, affected[a])
                            } else {
                                cb.agg_dropout(round, a, affected[a])
                            };
                            down_nodes[a] = Some(id);
                        }
                        AggStatus::Straggler { delay } => {
                            cb.agg_up(round, a);
                            cb.agg_straggler(round, a, delay as u64);
                        }
                        AggStatus::Up => cb.agg_up(round, a),
                    }
                }
                for &c in &cohort {
                    let home = topo.aggregator_of(c);
                    if !up[home] && ctx.route[c].is_some() {
                        cb.agg_reassign(round, c, down_nodes[home]);
                    }
                }
            }
        }

        self.cost_acc = (0..n)
            .map(|client| ClientRoundCost {
                client,
                ..Default::default()
            })
            .collect();

        // Local training on every sampled, online, routable client
        // (stragglers train too — they are slow, not dead; a cohort behind a
        // dead aggregator with no failover sits the round out entirely).
        // The fault plan and routing were fixed above on the calling thread,
        // so the scatter sees a fixed train set; each client trains against
        // its own RNG stream and its own child registry (`with_registry`
        // routes the trainer's global-registry instrumentation there), which
        // keeps both the parameter math and the traces independent of worker
        // interleaving.
        let local_cfg = ContrastiveConfig {
            seed: self.config.local.seed ^ (self.round as u64) << 17,
            ..self.config.local.clone()
        };
        let train_ids: Vec<usize> = cohort
            .iter()
            .copied()
            .filter(|&c| round_faults.participation[c].trains() && ctx.route[c].is_some())
            .collect();
        let losses: Vec<f64> = {
            let client_obs = &self.client_obs;
            fexiot_par::pool().map_subset_mut(&mut self.clients, &train_ids, |i, client| {
                let creg = &client_obs[i];
                fexiot_obs::with_registry(creg, || client.local_train_traced(&local_cfg, creg))
            })
        };
        // Gather in client order (train_ids is sorted ascending): losses sum
        // in the same sequence as the sequential loop (bit-identical mean),
        // and each child trace is merged under its `client[i]` span before
        // the next one.
        let mut total_loss = 0.0;
        let trained = train_ids.len();
        for (&i, loss) in train_ids.iter().zip(losses) {
            let _s = obs.span(format!("client[{i}]"));
            let creg = &self.client_obs[i];
            total_loss += loss;
            self.cost_acc[i].trained = true;
            obs.absorb(&creg.snapshot());
            creg.reset();
        }
        // Aggregator straggle is a cohort-wide wait: every trained client
        // routed through a late aggregator carries its delay.
        for &c in &train_ids {
            self.cost_acc[c].agg_ticks = ctx.agg_delay[c] as u64;
        }
        let mean_loss = if trained == 0 {
            0.0
        } else {
            total_loss / trained as f64
        };
        obs.gauge_set("fed.sim.mean_loss", mean_loss);
        obs.hist_record("fed.round.loss", fexiot_obs::buckets::LOSS, mean_loss);

        // §VI extensions: privatize what the server will observe, then score
        // client trust from the (privatized) update histories. Only clients
        // that trained this round have a fresh update to privatize.
        if let Some(dp) = self.config.dp {
            for &i in &train_ids {
                self.clients[i].privatize_last_update(&dp, &mut self.rng);
            }
            if let Some(acc) = &mut self.accountant {
                acc.record_release();
            }
        }

        // Server-side realization of the round: who delivered what.
        let state = {
            let _s = obs.span("fed.sim.receive");
            self.receive_updates(round_faults, &ctx)
        };

        let contributing: Vec<usize> = (0..n).filter(|&c| state.contributors[c]).collect();

        // Quorum gate: the round commits only when enough of the cohort's
        // sample-count weight actually reported. An aborted round is a
        // recorded no-op — contributor uploads (and aggregator forwards) are
        // priced because the bytes moved, but nothing is scored, aggregated,
        // or installed, so garbage from a structurally broken round can
        // never enter the models.
        let quorum = self.config.quorum.clamp(0.0, 1.0);
        let quorum_met = if quorum <= 0.0 || matches!(self.config.strategy, Strategy::LocalOnly) {
            true
        } else {
            let weight = |ids: &[usize]| -> f64 {
                ids.iter()
                    .map(|&c| self.clients[c].sample_count() as f64)
                    .sum()
            };
            let cohort_weight = weight(&cohort);
            if cohort_weight <= 0.0 {
                true
            } else {
                // Reported-weight fraction minus the gate: positive =
                // headroom, negative = aborted. Deterministic (sample
                // counts only), so the watch view and time-series can
                // carry it.
                let frac = weight(&contributing) / cohort_weight;
                obs.gauge_set("fed.round.quorum_margin", frac - quorum);
                frac >= quorum
            }
        };

        if quorum_met {
            if self.config.sybil_defense {
                self.score_trust();
            }
            let _s = obs.span("fed.sim.aggregate");
            match self.config.strategy.clone() {
                Strategy::LocalOnly => {}
                Strategy::FedAvg => self.aggregate_full(std::slice::from_ref(&contributing), &state),
                Strategy::Fmtl { eps1, eps2 } => {
                    self.refine_clusters(eps1, eps2, false);
                    let clusters = self.surviving_clusters(&state);
                    self.aggregate_full(&clusters, &state);
                }
                Strategy::GcflPlus { eps1, eps2 } => {
                    self.refine_clusters(eps1, eps2, true);
                    let clusters = self.surviving_clusters(&state);
                    self.aggregate_full(&clusters, &state);
                }
                Strategy::FexIot { eps1, eps2 } => {
                    self.recursive_layerwise(0, &contributing, eps1, eps2, &state);
                }
            }
        } else {
            obs.counter_add("fed.agg.quorum_aborts", 1);
            if let Some(cb) = self.causal.as_deref_mut() {
                cb.quorum_abort(
                    self.round,
                    cohort.len().saturating_sub(contributing.len()) as u64,
                );
            }
            // The contributors' uploads were already in flight when the
            // server gave up on the round; price them at full-model cost.
            for &c in &contributing {
                let bytes = param_bytes(self.clients[c].encoder.params());
                self.price_upload(c, bytes, &state);
            }
        }

        // Price the aggregator→server trunk: each aggregator that served at
        // least one contributor forwards one pre-aggregated message per
        // round (the weighted average is associative, so edge pre-
        // aggregation is the identity on the math — only the traffic shape
        // changes). Committed rounds broadcast the aggregate back down;
        // aborted rounds have nothing to broadcast.
        if hierarchical && !contributing.is_empty() {
            let model_bytes = param_bytes(self.clients[contributing[0]].encoder.params());
            let mut active_aggs: Vec<usize> =
                contributing.iter().filter_map(|&c| ctx.route[c]).collect();
            active_aggs.sort_unstable();
            active_aggs.dedup();
            for _ in &active_aggs {
                self.comm.record_agg_forward(model_bytes);
            }
            if quorum_met {
                for _ in &active_aggs {
                    self.comm.record_agg_broadcast(model_bytes);
                }
            }
        }

        for (c, &contributed) in state.contributors.iter().enumerate() {
            self.cost_acc[c].contributed = contributed;
        }

        // Retries are counted by `CommStats` as messages move; fold this
        // round's delta into the registry so the report below — and any
        // exported obs run report — read from one source. The same fold
        // surfaces the round's traffic as deterministic `fed.comm.*`
        // counters (whole-run totals) and per-round gauges.
        let comm_delta = self.comm.delta_since(&comm_before);
        self.obs
            .counter_add("fed.sim.retried_messages", comm_delta.retried_messages as u64);
        self.obs
            .counter_add("fed.comm.uploaded_bytes", comm_delta.uploaded_bytes as u64);
        self.obs
            .counter_add("fed.comm.downloaded_bytes", comm_delta.downloaded_bytes as u64);
        self.obs
            .counter_add("fed.comm.upload_messages", comm_delta.upload_messages as u64);
        self.obs
            .counter_add("fed.comm.download_messages", comm_delta.download_messages as u64);
        self.obs.gauge_set(
            "fed.comm.round_bytes",
            (comm_delta.uploaded_bytes + comm_delta.downloaded_bytes) as f64,
        );
        self.obs.gauge_set(
            "fed.comm.round_messages",
            (comm_delta.upload_messages + comm_delta.download_messages) as f64,
        );
        if hierarchical {
            self.obs.counter_add(
                "fed.agg.forward_messages",
                comm_delta.agg_forward_messages as u64,
            );
            self.obs
                .counter_add("fed.agg.forward_bytes", comm_delta.agg_forward_bytes as u64);
            self.obs.counter_add(
                "fed.agg.broadcast_messages",
                comm_delta.agg_broadcast_messages as u64,
            );
            self.obs.counter_add(
                "fed.agg.broadcast_bytes",
                comm_delta.agg_broadcast_bytes as u64,
            );
        }
        // Hard invariant (release builds too): a pricing bug fails closed as
        // a surfaced error instead of silently corrupting the Fig. 7
        // accounting. Debug builds still abort loudly.
        let comm_error = self.comm.validate().err();
        if let Some(e) = &comm_error {
            self.obs.counter_add("fed.sim.comm_invariant_violations", 1);
            debug_assert!(false, "comm stats invariant violated: {e}");
        }

        // The report's telemetry is read back from the registry as this
        // round's counter deltas.
        let delta =
            |i: usize| (self.obs.counter_value(ROUND_COUNTERS[i]) - base[i]) as usize;
        let participants = delta(0);
        let quarantined = delta(1);
        let sampled = cohort.len();
        let mut report_faults = RoundTelemetry {
            clients: n,
            sampled,
            participants,
            dropped: sampled - participants - quarantined,
            quarantined,
            stale_accepted: delta(2),
            retried_messages: delta(3),
            lost_messages: delta(4),
            backoff_ticks: delta(5),
            deadline_missed: (self.obs.counter_value("fed.agg.deadline_missed")
                - deadline_base) as usize,
            aggregators: topo.aggregators.max(1),
            agg_down,
            reassigned,
            quorum_aborted: !quorum_met,
            slo_failures: 0,
        };
        // Fleet-health hook: push this round's telemetry as direct samples
        // (every value above is a deterministic function of the seed), let
        // the store evaluate its snapshot-driven specs, then run the SLO
        // rules over the updated series. Keyed by the 0-based round index so
        // series round numbers match `round[N]` marks and span names.
        if let Some(tel) = self.telemetry.as_deref_mut() {
            let r = self.round as u64;
            let f = &report_faults;
            for (name, v) in [
                ("fed.round.clients", f.clients as f64),
                ("fed.round.sampled", f.sampled as f64),
                ("fed.round.participants", f.participants as f64),
                ("fed.round.dropped", f.dropped as f64),
                ("fed.round.quarantined", f.quarantined as f64),
                ("fed.round.stale_accepted", f.stale_accepted as f64),
                ("fed.round.retried_messages", f.retried_messages as f64),
                ("fed.round.lost_messages", f.lost_messages as f64),
                ("fed.round.backoff_ticks", f.backoff_ticks as f64),
                ("fed.round.deadline_missed", f.deadline_missed as f64),
                ("fed.round.agg_down", f.agg_down as f64),
                ("fed.round.reassigned", f.reassigned as f64),
                ("fed.round.quorum_aborted", f.quorum_aborted as u8 as f64),
                ("fed.round.mean_loss", mean_loss),
                (
                    "fed.round.comm_bytes",
                    (comm_delta.uploaded_bytes + comm_delta.downloaded_bytes) as f64,
                ),
                (
                    "fed.round.comm_messages",
                    (comm_delta.upload_messages + comm_delta.download_messages) as f64,
                ),
            ] {
                tel.push_sample(r, name, v);
            }
            report_faults.slo_failures =
                tel.observe_round(r, &self.obs.metrics_snapshot());
            // Watch surface: marks carry the per-round verdict count — and,
            // with causal tracing on, the dominant root cause — so
            // `obs-export --watch` can show SLO state straight off the
            // stream. Deterministic: counts and causes derive from the
            // seeded draws only.
            self.obs
                .mark(&format!("slo_failing[{}]", report_faults.slo_failures));
            self.last_root_cause = None;
            if report_faults.slo_failures > 0 {
                if let (Some(cb), Some(engine)) = (self.causal.as_deref(), tel.slo.as_ref()) {
                    let ranked = fexiot_obs::root_cause(cb.graph(), engine);
                    if let Some(top) = ranked.first().and_then(|rc| rc.causes.first()) {
                        self.last_root_cause = Some(top.cause.clone());
                        self.obs.mark(&format!("slo_top_cause[{}]", top.cause));
                    }
                }
            }
        }
        self.round_costs.push(RoundCost {
            round: self.round,
            costs: std::mem::take(&mut self.cost_acc),
        });
        self.round += 1;
        RoundReport {
            round: self.round,
            mean_loss,
            cumulative_comm: self.comm,
            faults: report_faults,
            comm_error,
        }
    }

    /// Turns the round's fault realization into the server's view: which
    /// updates arrived, which were corrupted in flight, which survive
    /// validation and the round deadline, and at what staleness weight. Also
    /// prices the traffic of uploads that never made it into aggregation
    /// (lost or quarantined). Only this round's cohort — restricted to
    /// clients with a live aggregator route — can contribute at all.
    fn receive_updates(&mut self, round_faults: RoundFaults, ctx: &RoundCtx) -> RoundState {
        let n = self.clients.len();
        let mut state = RoundState::clean(n);
        state.faults = round_faults;
        // LocalOnly has no server: nobody uploads, so nothing can be lost,
        // corrupted, or quarantined. Participants are whoever trained
        // (aggregator routing does not apply — there is nowhere to route).
        if matches!(self.config.strategy, Strategy::LocalOnly) {
            for c in 0..n {
                state.contributors[c] = ctx.sampled[c] && state.faults.participation[c].trains();
            }
            let participants = state.contributors.iter().filter(|&&x| x).count();
            self.obs
                .counter_add("fed.sim.participants", participants as u64);
            return state;
        }
        let plan = self.injector.plan().clone();
        // Unsampled clients and cohorts stranded behind a dead aggregator
        // are out of the round before any update can move.
        for c in 0..n {
            state.contributors[c] = ctx.sampled[c] && ctx.route[c].is_some();
        }

        // 1. Staleness-bounded participation: on-time clients are full
        //    weight, stragglers within the bound are decayed, later ones
        //    contribute nothing this round. The server waits a straggler out
        //    up to the staleness bound either way — that wait is the round's
        //    dominant simulated-tick cost for critical-path attribution.
        for c in 0..n {
            if !state.contributors[c] {
                continue;
            }
            match state.faults.participation[c] {
                Participation::Active => {}
                Participation::Straggler { delay } => {
                    let wait = straggler_wait(delay, plan.staleness_bound) as u64;
                    self.cost_acc[c].straggler_ticks = wait;
                    let waited = self
                        .causal
                        .as_deref_mut()
                        .map(|cb| cb.client_straggler(self.round, c, wait));
                    if delay <= plan.staleness_bound {
                        state.stale_weight[c] = plan.staleness_decay.powi(delay as i32);
                        self.obs.counter_add("fed.sim.stale_accepted", 1);
                        if let (Some(cb), Some(after)) = (self.causal.as_deref_mut(), waited) {
                            cb.stale_accept(self.round, c, after);
                        }
                    } else {
                        state.contributors[c] = false;
                        if let (Some(cb), Some(after)) = (self.causal.as_deref_mut(), waited) {
                            cb.stale_reject(self.round, c, after);
                        }
                    }
                }
                _ => state.contributors[c] = false,
            }
        }

        // 2. Upload delivery with bounded retry. A lost upload still burned
        //    bandwidth on every attempt; price it at full-model cost (an
        //    upper bound for the layer-cadence strategies) and drop the
        //    client from the round.
        for c in 0..n {
            if !state.contributors[c] {
                continue;
            }
            if state.faults.up_attempts[c].is_none() {
                let bytes = param_bytes(self.clients[c].encoder.params());
                let attempts = 1 + plan.max_retries;
                self.comm.record_upload_attempts(bytes, attempts);
                self.charge_backoff(c, attempts);
                self.obs.counter_add("fed.sim.lost_messages", 1);
                self.cost_acc[c].lost_upload = true;
                state.contributors[c] = false;
                if let Some(cb) = self.causal.as_deref_mut() {
                    cb.lost_upload(self.round, c, backoff_ticks_for(attempts) as u64);
                }
            }
        }

        // Causal: uploads that landed only after retransmission are their
        // own fault events, costed at the backoff ticks they added.
        if self.causal.is_some() {
            for c in 0..n {
                if state.contributors[c] && state.up_attempts(c) > 1 {
                    let ticks = backoff_ticks_for(state.up_attempts(c)) as u64;
                    if let Some(cb) = self.causal.as_deref_mut() {
                        cb.retry(self.round, c, ticks);
                    }
                }
            }
        }

        // 2b. Round deadline: a delivered update whose report path —
        //     straggler wait + upload backoff + aggregator-tier delay — blew
        //     the deadline is excluded from aggregation. The wait and
        //     backoff ticks were already priced/attributed above; like a
        //     too-stale update, the server simply stops listening, so no
        //     extra traffic is charged.
        if let Some(deadline) = ctx.deadline {
            for c in 0..n {
                if !state.contributors[c] {
                    continue;
                }
                let wait = match state.faults.participation[c] {
                    Participation::Straggler { delay } => {
                        straggler_wait(delay, plan.staleness_bound)
                    }
                    _ => 0,
                };
                let report_ticks = wait
                    .saturating_add(backoff_ticks_for(state.up_attempts(c)))
                    .saturating_add(ctx.agg_delay[c]);
                if report_ticks > deadline {
                    state.contributors[c] = false;
                    self.obs.counter_add("fed.agg.deadline_missed", 1);
                    if let Some(cb) = self.causal.as_deref_mut() {
                        cb.deadline_miss(self.round, c, report_ticks as u64);
                    }
                }
            }
        }

        // 3. In-flight corruption + validation. NaN/Inf is always
        //    quarantined; finite-but-huge updates are caught by the norm
        //    guard against a robust reference norm — before any of it can
        //    reach `param_weighted_average` or FoolsGold.
        if self.injector.plan().corrupt > 0.0 {
            for c in 0..n {
                if state.contributors[c] && state.faults.corrupt[c] {
                    state.observed[c] =
                        Some(self.injector.corrupt_params(self.clients[c].encoder.params()));
                }
            }
            let mut quarantine = vec![false; n];
            for (c, q) in quarantine.iter_mut().enumerate() {
                if state.contributors[c]
                    && !param_is_finite(state.observed_params(&self.clients, c))
                {
                    *q = true;
                }
            }
            let mut norms: Vec<f64> = (0..n)
                .filter(|&c| state.contributors[c] && !quarantine[c])
                .map(|c| param_norm(state.observed_params(&self.clients, c)))
                .collect();
            norms.sort_by(|a, b| a.total_cmp(b));
            if !norms.is_empty() {
                // Lower quartile, not median: client models all descend from
                // the same template so clean norms are tightly grouped, and
                // the guard then survives rounds where corrupted uploads are
                // the majority (breakdown point 75% instead of 50%).
                let reference = norms[norms.len() / 4];
                if reference > 0.0 {
                    for (c, q) in quarantine.iter_mut().enumerate() {
                        if state.contributors[c]
                            && !*q
                            && param_norm(state.observed_params(&self.clients, c))
                                > plan.norm_guard * reference
                        {
                            *q = true;
                        }
                    }
                }
            }
            for (c, &quarantined) in quarantine.iter().enumerate() {
                if quarantined {
                    // The garbage bytes were delivered — price them.
                    let bytes = param_bytes(self.clients[c].encoder.params());
                    let attempts = state.up_attempts(c);
                    self.comm.record_upload_attempts(bytes, attempts);
                    self.charge_backoff(c, attempts);
                    self.cost_acc[c].quarantined = true;
                    state.contributors[c] = false;
                    state.observed[c] = None;
                    self.obs.counter_add("fed.sim.quarantined", 1);
                    if let Some(cb) = self.causal.as_deref_mut() {
                        cb.quarantine(self.round, c);
                    }
                }
            }
        }

        let participants = state.contributors.iter().filter(|&&x| x).count();
        self.obs
            .counter_add("fed.sim.participants", participants as u64);
        state
    }

    /// FoolsGold trust over cumulative update directions. Quarantined
    /// clients' newest (corrupt) update is excluded so garbage cannot poison
    /// the similarity scores.
    fn score_trust(&mut self) {
        // The receive stage flagged exactly the clients whose newest update
        // was quarantined this round (sampling-aware: an unsampled client's
        // stale history entry is never excluded by mistake).
        let quarantined_now = |c: usize| self.cost_acc[c].quarantined;
        let histories: Vec<Vec<f64>> = self
            .clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let keep = if quarantined_now(i) {
                    c.update_history.len().saturating_sub(1)
                } else {
                    c.update_history.len()
                };
                // Cumulative update direction over the retained history.
                let mut acc: Vec<f64> = Vec::new();
                for h in c.update_history.iter().take(keep) {
                    if acc.is_empty() {
                        acc = h.clone();
                    } else {
                        for (a, v) in acc.iter_mut().zip(h) {
                            *a += v;
                        }
                    }
                }
                acc
            })
            .collect();
        self.trust = crate::sybil::foolsgold_weights(&histories);
    }

    /// FMTL/GCFL+ clusters restricted to this round's contributors.
    fn surviving_clusters(&self, state: &RoundState) -> Vec<Vec<usize>> {
        self.clusters
            .iter()
            .map(|cluster| {
                cluster
                    .iter()
                    .copied()
                    .filter(|&c| state.contributors[c])
                    .collect()
            })
            .collect()
    }

    /// Books the backoff ticks of one `attempts`-transmission message: into
    /// the round counter (telemetry) and onto client `c`'s cost ledger
    /// (critical-path attribution).
    fn charge_backoff(&mut self, c: usize, attempts: usize) {
        let ticks = backoff_ticks_for(attempts) as u64;
        self.obs.counter_add("fed.sim.backoff_ticks", ticks);
        self.cost_acc[c].backoff_ticks += ticks;
        self.cost_acc[c].retries += attempts.saturating_sub(1) as u64;
    }

    /// Prices one upload from contributor `c`, including any retries.
    fn price_upload(&mut self, c: usize, bytes: usize, state: &RoundState) {
        let attempts = state.up_attempts(c);
        self.comm.record_upload_attempts(bytes, attempts);
        self.charge_backoff(c, attempts);
    }

    /// Prices one download to client `c`; returns false when the message is
    /// lost even after every retry (the client keeps its local model).
    fn deliver_download(&mut self, c: usize, bytes: usize, state: &RoundState) -> bool {
        match state.faults.down_attempts[c] {
            Some(attempts) => {
                self.comm.record_download_attempts(bytes, attempts);
                self.charge_backoff(c, attempts);
                true
            }
            None => {
                let attempts = 1 + self.injector.plan().max_retries;
                self.comm.record_download_attempts(bytes, attempts);
                self.charge_backoff(c, attempts);
                self.obs.counter_add("fed.sim.lost_messages", 1);
                false
            }
        }
    }

    /// Full-model aggregation within each cluster (FedAvg / FMTL / GCFL+).
    /// Every surviving member uploads its whole model; members of clusters
    /// with at least two contributors download the cluster average.
    fn aggregate_full(&mut self, clusters: &[Vec<usize>], state: &RoundState) {
        for cluster in clusters {
            for &c in cluster {
                let bytes = param_bytes(self.clients[c].encoder.params());
                self.price_upload(c, bytes, state);
            }
            if cluster.len() < 2 {
                continue; // Aggregating one model is the identity: no download.
            }
            let sets: Vec<&ParamVec> = cluster
                .iter()
                .map(|&c| state.observed_params(&self.clients, c))
                .collect();
            let weights = self.effective_weights(cluster, state);
            let avg = if self.config.secure_aggregation {
                crate::secure_agg::secure_weighted_average(
                    &sets,
                    &weights,
                    self.config.seed ^ (self.round as u64) << 8,
                )
            } else {
                param_weighted_average(&sets, &weights)
            };
            let bytes = param_bytes(&avg);
            for &c in cluster {
                if self.deliver_download(c, bytes, state) {
                    self.clients[c].install(avg.clone());
                }
            }
        }
    }

    /// FMTL / GCFL+ cluster refinement: split a cluster in two when the
    /// stationarity criteria (Eq. 3, whole-model variant) fire.
    fn refine_clusters(&mut self, eps1: f64, eps2: f64, use_history: bool) {
        let mut next = Vec::new();
        for cluster in self.clusters.clone() {
            if cluster.len() < 2 {
                next.push(cluster);
                continue;
            }
            let deltas: Vec<Vec<f64>> = cluster
                .iter()
                .map(|&c| {
                    self.clients[c]
                        .last_delta
                        .as_ref()
                        .map(param_flatten)
                        .unwrap_or_default()
                })
                .collect();
            if deltas.iter().any(Vec::is_empty) {
                next.push(cluster);
                continue;
            }
            if !self.split_criteria(&cluster, &deltas, eps1, eps2) {
                next.push(cluster);
                continue;
            }
            // Similarity basis: latest update (FMTL) or update history (GCFL+).
            let basis: Vec<Vec<f64>> = if use_history {
                cluster
                    .iter()
                    .map(|&c| {
                        let h = &self.clients[c].update_history;
                        h.iter().flatten().copied().collect()
                    })
                    .collect()
            } else {
                deltas
            };
            // Histories can have unequal lengths early on; pad with zeros.
            let max_len = basis.iter().map(Vec::len).max().unwrap_or(0);
            let padded: Vec<Vec<f64>> = basis
                .into_iter()
                .map(|mut v| {
                    v.resize(max_len, 0.0);
                    v
                })
                .collect();
            let (a, b) = binary_cosine_split(&padded, &mut self.rng);
            next.push(a.into_iter().map(|i| cluster[i]).collect());
            next.push(b.into_iter().map(|i| cluster[i]).collect());
        }
        self.clusters = next;
    }

    /// Eq. (3): ϵ1 > ‖Σ_i (|G_i|/|G|) ΔW_i‖ and ϵ2 < max_i ‖ΔW_i‖.
    fn split_criteria(&self, cluster: &[usize], deltas: &[Vec<f64>], eps1: f64, eps2: f64) -> bool {
        let total: f64 = cluster
            .iter()
            .map(|&c| self.clients[c].sample_count() as f64)
            .sum();
        if total == 0.0 {
            return false;
        }
        let dim = deltas[0].len();
        let mut weighted_sum = vec![0.0; dim];
        let mut max_norm = 0.0f64;
        for (&c, d) in cluster.iter().zip(deltas) {
            let w = self.clients[c].sample_count() as f64 / total;
            for (s, &v) in weighted_sum.iter_mut().zip(d) {
                *s += w * v;
            }
            max_norm = max_norm.max(d.iter().map(|v| v * v).sum::<f64>().sqrt());
        }
        let mean_norm = weighted_sum.iter().map(|v| v * v).sum::<f64>().sqrt();
        eps1 > mean_norm && eps2 < max_norm
    }

    /// Algorithm 1: `RecursiveClusteringAgg(l, cluster)`. Traffic follows the
    /// paper's layer-wise scheme in two ways: (i) singleton clusters stop
    /// syncing (aggregating one model is a no-op), and (ii) upper layers sync
    /// on a slower cadence — layer `l` is exchanged every `l + 1` rounds.
    /// The cadence operationalizes the paper's observation that "from the
    /// bottom up, the degree of similarity among deep models decreases":
    /// upper layers are more client-specific, so averaging them every round
    /// buys little, and skipping them is where FexIoT's ~40% communication
    /// saving over whole-model strategies comes from (Fig. 7).
    fn recursive_layerwise(
        &mut self,
        layer: usize,
        subset: &[usize],
        eps1: f64,
        eps2: f64,
        state: &RoundState,
    ) {
        if layer >= self.layer_spans.len() || subset.len() < 2 {
            return;
        }
        if self.config.layer_cadence && !self.round.is_multiple_of(layer + 1) {
            // This layer is off-cadence this round: no upload, no aggregation,
            // no split decision; continue with the same cluster below.
            self.recursive_layerwise(layer + 1, subset, eps1, eps2, state);
            return;
        }
        let (offset, len) = self.layer_spans[layer];
        let layer_bytes = |client: &Client| {
            client.encoder.params()[offset..offset + len]
                .iter()
                .map(Matrix::len)
                .sum::<usize>()
                * std::mem::size_of::<f64>()
        };
        // Upload layer l.
        for &c in subset {
            let bytes = layer_bytes(&self.clients[c]);
            self.price_upload(c, bytes, state);
        }
        // Layer-l deltas for the split criteria.
        let layer_deltas: Vec<Vec<f64>> = subset
            .iter()
            .map(|&c| match &self.clients[c].last_delta {
                Some(d) => {
                    let mut flat = Vec::new();
                    for m in &d[offset..offset + len] {
                        flat.extend_from_slice(m.as_slice());
                    }
                    flat
                }
                None => Vec::new(),
            })
            .collect();

        let split = !layer_deltas.iter().any(Vec::is_empty)
            && self.split_criteria(subset, &layer_deltas, eps1, eps2);

        if split {
            // Cosine similarity of the layer *weights* (Alg. 1 line 13).
            let weights_flat: Vec<Vec<f64>> = subset
                .iter()
                .map(|&c| {
                    let mut flat = Vec::new();
                    for m in &state.observed_params(&self.clients, c)[offset..offset + len] {
                        flat.extend_from_slice(m.as_slice());
                    }
                    flat
                })
                .collect();
            let (a, b) = binary_cosine_split(&weights_flat, &mut self.rng);
            let sub_a: Vec<usize> = a.into_iter().map(|i| subset[i]).collect();
            let sub_b: Vec<usize> = b.into_iter().map(|i| subset[i]).collect();
            self.aggregate_layer(layer, &sub_a, state);
            self.aggregate_layer(layer, &sub_b, state);
            self.recursive_layerwise(layer + 1, &sub_a, eps1, eps2, state);
            self.recursive_layerwise(layer + 1, &sub_b, eps1, eps2, state);
        } else {
            self.aggregate_layer(layer, subset, state);
            self.recursive_layerwise(layer + 1, subset, eps1, eps2, state);
        }
    }

    /// Weighted average of one layer within a cluster, installed to members.
    fn aggregate_layer(&mut self, layer: usize, subset: &[usize], state: &RoundState) {
        if subset.len() < 2 {
            return;
        }
        let (offset, len) = self.layer_spans[layer];
        let sets: Vec<ParamVec> = subset
            .iter()
            .map(|&c| state.observed_params(&self.clients, c)[offset..offset + len].to_vec())
            .collect();
        let refs: Vec<&ParamVec> = sets.iter().collect();
        let weights = self.effective_weights(subset, state);
        let avg = if self.config.secure_aggregation {
            crate::secure_agg::secure_weighted_average(
                &refs,
                &weights,
                self.config.seed ^ (self.round as u64) << 8 ^ (layer as u64) << 4,
            )
        } else {
            param_weighted_average(&refs, &weights)
        };
        let bytes: usize = avg.iter().map(Matrix::len).sum::<usize>() * std::mem::size_of::<f64>();
        for &c in subset {
            if self.deliver_download(c, bytes, state) {
                self.clients[c].install_layer(offset, &avg);
            }
        }
    }

    /// Sample-count weights scaled by Sybil-defense trust, then by staleness
    /// decay. `param_weighted_average` renormalizes over the subset, so
    /// partial participation automatically re-weights the survivors.
    fn effective_weights(&self, subset: &[usize], state: &RoundState) -> Vec<f64> {
        let mut weights = self.aggregation_weights(subset);
        for (w, &c) in weights.iter_mut().zip(subset) {
            *w *= state.stale_weight[c];
        }
        weights
    }

    /// Sample-count weights scaled by Sybil-defense trust. Falls back to
    /// plain sample counts if the defense zeroed everything out, and to
    /// uniform weights if the sample counts themselves are all zero (the
    /// weighted average would otherwise divide by zero).
    fn aggregation_weights(&self, subset: &[usize]) -> Vec<f64> {
        let weighted: Vec<f64> = subset
            .iter()
            .map(|&c| self.clients[c].sample_count() as f64 * self.trust[c])
            .collect();
        if weighted.iter().sum::<f64>() > 0.0 {
            return weighted;
        }
        let counts: Vec<f64> = subset
            .iter()
            .map(|&c| self.clients[c].sample_count() as f64)
            .collect();
        if counts.iter().sum::<f64>() > 0.0 {
            counts
        } else {
            vec![1.0; subset.len()]
        }
    }

    /// Per-round per-client simulated-tick cost attribution recorded so far
    /// (not checkpointed: a restored simulator starts with an empty ledger
    /// and accumulates costs for the rounds it actually runs).
    pub fn round_costs(&self) -> &[RoundCost] {
        &self.round_costs
    }

    /// The per-round critical path — each round's slowest client chain, with
    /// the simulated ticks attributed to straggler waiting vs retry backoff.
    /// A pure function of the seeded [`FaultPlan`]: same seed, same path.
    pub fn critical_path(&self) -> Vec<CriticalPathEntry> {
        fexiot_obs::critical_path(&self.round_costs)
    }

    /// Current FMTL/GCFL+ cluster assignment (for diagnostics).
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Per-client trust weights from the Sybil defense (all 1.0 when off).
    pub fn trust(&self) -> &[f64] {
        &self.trust
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Cumulative `(epsilon, delta)`-DP guarantee spent so far, if DP is on.
    pub fn privacy_epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    /// Evaluates every client on a shared test set.
    pub fn evaluate(&mut self, test: &GraphDataset) -> Vec<Metrics> {
        self.clients.iter_mut().map(|c| c.evaluate(test)).collect()
    }

    /// Mean pairwise cosine similarity of client models (convergence probe).
    pub fn model_similarity(&self) -> f64 {
        let flats: Vec<Vec<f64>> = self
            .clients
            .iter()
            .map(|c| param_flatten(c.encoder.params()))
            .collect();
        let mut total = 0.0;
        let mut n = 0usize;
        for i in 0..flats.len() {
            for j in (i + 1)..flats.len() {
                total += cosine_similarity(&flats[i], &flats[j]);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            total / n as f64
        }
    }

    /// Serializes the complete global state between rounds — client models,
    /// deltas and histories, clusters, trust, traffic counters, both RNG
    /// streams, and the crash ledger — so a crashed run can resume exactly
    /// where it stopped.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.write_str(CHECKPOINT_MAGIC);
        w.write_usize(self.round);
        w.write_usize(self.clients.len());
        for c in &self.clients {
            w.write_matrices(c.encoder.params());
            match &c.last_delta {
                Some(d) => {
                    w.write_u8(1);
                    w.write_matrices(d);
                }
                None => w.write_u8(0),
            }
            w.write_usize(c.update_history.len());
            for h in &c.update_history {
                w.write_f64_slice(h);
            }
        }
        w.write_usize(self.clusters.len());
        for cluster in &self.clusters {
            w.write_usize(cluster.len());
            for &i in cluster {
                w.write_usize(i);
            }
        }
        w.write_f64_slice(&self.trust);
        w.write_usize(self.comm.uploaded_bytes);
        w.write_usize(self.comm.downloaded_bytes);
        w.write_usize(self.comm.upload_messages);
        w.write_usize(self.comm.download_messages);
        w.write_usize(self.comm.retried_messages);
        w.write_usize(self.comm.retried_bytes);
        w.write_usize(self.comm.agg_forward_bytes);
        w.write_usize(self.comm.agg_forward_messages);
        w.write_usize(self.comm.agg_broadcast_bytes);
        w.write_usize(self.comm.agg_broadcast_messages);
        for s in self.rng.state() {
            w.write_u64(s);
        }
        let (inj_rng, down_until, agg_down_until) = self.injector.state();
        for s in inj_rng {
            w.write_u64(s);
        }
        w.write_usize(down_until.len());
        for d in down_until {
            w.write_u64(d);
        }
        w.write_usize(agg_down_until.len());
        for d in agg_down_until {
            w.write_u64(d);
        }
        for s in self.sampler.state() {
            w.write_u64(s);
        }
        w.write_usize(self.accountant.as_ref().map_or(0, |a| a.releases()));
        w.into_bytes()
    }

    /// Restores a [`FedSim::checkpoint`] into a freshly built federation
    /// with the same clients and configuration. Continuing `run_round` after
    /// a restore reproduces the original run bit-for-bit.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.read_str()? != CHECKPOINT_MAGIC {
            return Err(CodecError::BadHeader);
        }
        let round = r.read_usize()?;
        let n = r.read_usize()?;
        if n != self.clients.len() {
            return Err(CodecError::BadHeader);
        }
        for c in &mut self.clients {
            let params = r.read_matrices()?;
            let current = c.encoder.params();
            if params.len() != current.len()
                || params
                    .iter()
                    .zip(current)
                    .any(|(a, b)| a.shape() != b.shape())
            {
                return Err(CodecError::BadHeader);
            }
            c.install(params);
            c.last_delta = match r.read_u8()? {
                1 => Some(r.read_matrices()?),
                _ => None,
            };
            let hist_len = r.read_usize()?;
            c.update_history = (0..hist_len)
                .map(|_| r.read_f64_vec())
                .collect::<Result<_, _>>()?;
        }
        let n_clusters = r.read_usize()?;
        let mut clusters = Vec::with_capacity(n_clusters);
        for _ in 0..n_clusters {
            let len = r.read_usize()?;
            let cluster: Vec<usize> = (0..len)
                .map(|_| r.read_usize())
                .collect::<Result<_, _>>()?;
            if cluster.iter().any(|&i| i >= n) {
                return Err(CodecError::BadHeader);
            }
            clusters.push(cluster);
        }
        let trust = r.read_f64_vec()?;
        if trust.len() != n {
            return Err(CodecError::BadHeader);
        }
        let comm = CommStats {
            uploaded_bytes: r.read_usize()?,
            downloaded_bytes: r.read_usize()?,
            upload_messages: r.read_usize()?,
            download_messages: r.read_usize()?,
            retried_messages: r.read_usize()?,
            retried_bytes: r.read_usize()?,
            agg_forward_bytes: r.read_usize()?,
            agg_forward_messages: r.read_usize()?,
            agg_broadcast_bytes: r.read_usize()?,
            agg_broadcast_messages: r.read_usize()?,
        };
        let rng_state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        let inj_rng = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        let down_len = r.read_usize()?;
        let down_until: Vec<u64> = (0..down_len)
            .map(|_| r.read_u64())
            .collect::<Result<_, _>>()?;
        if down_until.len() != n {
            return Err(CodecError::BadHeader);
        }
        let agg_down_len = r.read_usize()?;
        // The aggregator ledger is sized lazily; it can never exceed the
        // configured tier (a corrupt blob would otherwise balloon it).
        if agg_down_len > self.config.topology.aggregators.max(1) {
            return Err(CodecError::BadHeader);
        }
        let agg_down_until: Vec<u64> = (0..agg_down_len)
            .map(|_| r.read_u64())
            .collect::<Result<_, _>>()?;
        let sampler_state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        let releases = r.read_usize()?;

        self.round = round;
        self.clusters = clusters;
        self.trust = trust;
        self.comm = comm;
        self.rng = Rng::from_state(rng_state);
        self.injector.restore_state(inj_rng, down_until, agg_down_until);
        self.sampler.restore_state(sampler_state);
        if let (Some(acc), Some(dp)) = (&mut self.accountant, &self.config.dp) {
            *acc = crate::dp::PrivacyAccountant::new(dp.noise_multiplier);
            for _ in 0..releases {
                acc.record_release();
            }
        }
        Ok(())
    }
}

/// Magic + version prefix of checkpoint blobs.
const CHECKPOINT_MAGIC: &str = "FEXFEDCK2";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Corruption;
    use fexiot_gnn::{Encoder, Gin};
    use fexiot_graph::{generate_dataset, DatasetConfig};

    fn make_sim(strategy: Strategy, n_clients: usize, seed: u64) -> (FedSim, GraphDataset) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 80;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let splits = train.dirichlet_split(n_clients, 1.0, &mut rng);
        let d = train.graphs[0].nodes[0].features.len();
        let template = Gin::new(d, &[12], 6, &mut rng);
        let clients = splits
            .into_iter()
            .enumerate()
            .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
            .collect();
        let config = FedConfig {
            strategy,
            rounds: 2,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 12,
                ..Default::default()
            },
            seed,
            ..Default::default()
        };
        (FedSim::new(clients, config), test)
    }

    #[test]
    fn fedavg_synchronizes_models() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 4, 1);
        sim.run();
        assert!(
            sim.model_similarity() > 0.999,
            "similarity {}",
            sim.model_similarity()
        );
        assert!(sim.comm.total_bytes() > 0);
    }

    #[test]
    fn local_only_never_communicates() {
        let (mut sim, _) = make_sim(Strategy::LocalOnly, 4, 2);
        sim.run();
        assert_eq!(sim.comm.total_bytes(), 0);
        assert!(
            sim.model_similarity() < 0.9999,
            "local models should diverge"
        );
    }

    #[test]
    fn fexiot_uses_less_traffic_than_fedavg() {
        let (mut avg_sim, _) = make_sim(Strategy::FedAvg, 6, 3);
        avg_sim.run();
        let (mut fex_sim, _) = make_sim(Strategy::fexiot_default(), 6, 3);
        fex_sim.run();
        assert!(
            fex_sim.comm.total_bytes() <= avg_sim.comm.total_bytes(),
            "fexiot {} vs fedavg {}",
            fex_sim.comm.total_bytes(),
            avg_sim.comm.total_bytes()
        );
    }

    #[test]
    fn evaluation_returns_per_client_metrics() {
        let (mut sim, test) = make_sim(Strategy::FedAvg, 3, 4);
        sim.run();
        let metrics = sim.evaluate(&test);
        assert_eq!(metrics.len(), 3);
        for m in metrics {
            assert!((0.0..=1.0).contains(&m.accuracy));
        }
    }

    #[test]
    fn fmtl_clusters_partition_clients() {
        let (mut sim, _) = make_sim(Strategy::fmtl_default(), 5, 5);
        sim.run();
        let mut seen: Vec<usize> = sim.clusters().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn magnn_federation_runs_layerwise_on_hetero_data() {
        // Heterogeneous platforms + MAGNN + FexIoT layer-wise recursion: the
        // per-type projection layer (5 matrices), metapath layer (7), and
        // readout (1) must all aggregate without shape errors.
        let mut rng = Rng::seed_from_u64(31);
        let mut cfg = fexiot_graph::DatasetConfig::small_hetero();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let splits = train.dirichlet_split(3, 1.0, &mut rng);
        let template =
            fexiot_gnn::Magnn::for_config(fexiot_graph::FeatureConfig::small(), 12, 6, 6, &mut rng);
        let clients: Vec<Client> = splits
            .into_iter()
            .enumerate()
            .map(|(i, data)| Client::new(i, Encoder::Magnn(template.clone()), data))
            .collect();
        let config = FedConfig {
            strategy: Strategy::fexiot_default(),
            rounds: 3,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 8,
                ..Default::default()
            },
            seed: 31,
            ..Default::default()
        };
        let mut sim = FedSim::new(clients, config);
        sim.run();
        assert!(sim.comm.total_bytes() > 0);
        for m in sim.evaluate(&test) {
            assert!(m.accuracy.is_finite());
        }
        for c in &sim.clients {
            assert!(c.encoder.params().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn dp_training_stays_finite_and_accounts_privacy() {
        let (mut sim, test) = make_sim(Strategy::FedAvg, 3, 7);
        sim.config.dp = Some(crate::dp::DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
        });
        sim.accountant = Some(crate::dp::PrivacyAccountant::new(1.0));
        sim.run();
        let eps = sim.privacy_epsilon(1e-5).expect("accountant present");
        assert!(eps > 0.0 && eps.is_finite(), "epsilon {eps}");
        for m in sim.evaluate(&test) {
            assert!(m.accuracy.is_finite());
        }
        for c in &sim.clients {
            assert!(c.encoder.params().iter().all(|m| m.is_finite()));
        }
    }

    #[test]
    fn secure_aggregation_matches_plain_aggregation() {
        let (mut plain, _) = make_sim(Strategy::FedAvg, 4, 8);
        let (mut secure, _) = make_sim(Strategy::FedAvg, 4, 8);
        secure.config.secure_aggregation = true;
        plain.run();
        secure.run();
        for (a, b) in plain.clients.iter().zip(&secure.clients) {
            for (ma, mb) in a.encoder.params().iter().zip(b.encoder.params()) {
                assert!(ma.max_abs_diff(mb) < 1e-6, "secure aggregation diverged");
            }
        }
    }

    #[test]
    fn sybil_defense_downweights_replicas() {
        // Clone one client's dataset across three "sybils"; honest clients
        // keep distinct data. After rounds, sybil trust should be lowest.
        let (mut sim, _) = make_sim(Strategy::FedAvg, 6, 9);
        sim.config.sybil_defense = true;
        // Make clients 0,1,2 identical replicas (same data ⇒ same updates,
        // since local seeds derive from client ids we align those too).
        let template = sim.clients[0].data.clone();
        for i in 1..3 {
            sim.clients[i].data = template.clone();
            sim.clients[i].labels = sim.clients[0].labels.clone();
            sim.clients[i].classes = sim.clients[0].classes.clone();
            sim.clients[i].id = sim.clients[0].id; // identical pair sampling
        }
        sim.run();
        let trust = sim.trust().to_vec();
        let sybil_mean = (trust[0] + trust[1] + trust[2]) / 3.0;
        let honest_mean = (trust[3] + trust[4] + trust[5]) / 3.0;
        assert!(
            sybil_mean < honest_mean,
            "sybils {sybil_mean} should be trusted less than honest {honest_mean}: {trust:?}"
        );
    }

    #[test]
    fn reports_track_rounds_and_comm_monotone() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 3, 6);
        let reports = sim.run();
        assert_eq!(reports.len(), 2);
        assert!(
            reports[0].cumulative_comm.total_bytes() <= reports[1].cumulative_comm.total_bytes()
        );
        assert_eq!(reports[1].round, 2);
    }

    #[test]
    fn try_new_rejects_empty_federations() {
        let config = FedConfig::default();
        assert_eq!(
            FedSim::try_new(Vec::new(), config).err(),
            Some(FedError::NoClients)
        );
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 3, 12);
        // Sybil defense zeroed every trust weight AND the clients report
        // zero samples: both weight sources are dead, so the aggregator
        // must fall back to uniform instead of dividing by zero.
        sim.trust = vec![0.0; 3];
        for c in &mut sim.clients {
            c.data.graphs.clear();
        }
        let w = sim.aggregation_weights(&[0, 1, 2]);
        assert_eq!(w, vec![1.0; 3]);
        // Trust-only zeroing falls back to sample counts.
        let (mut sim2, _) = make_sim(Strategy::FedAvg, 3, 12);
        sim2.trust = vec![0.0; 3];
        let w2 = sim2.aggregation_weights(&[0, 1, 2]);
        assert!(w2.iter().all(|&x| x > 0.0), "{w2:?}");
    }

    #[test]
    fn faultless_telemetry_counts_everyone_as_participant() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 4, 13);
        let reports = sim.run();
        for r in &reports {
            assert_eq!(r.faults.clients, 4);
            assert_eq!(r.faults.participants, 4);
            assert_eq!(r.faults.dropped, 0);
            assert_eq!(r.faults.quarantined, 0);
            assert_eq!(r.faults.retried_messages, 0);
            assert_eq!(r.faults.lost_messages, 0);
        }
    }

    #[test]
    fn faulty_fexiot_run_survives_dropout_and_corruption() {
        // Acceptance scenario: 30% dropout + corruption injection over a
        // 10-round FexIoT run — no panics, no NaNs, telemetry populated.
        let (mut sim, test) = make_sim(Strategy::fexiot_default(), 6, 21);
        sim.config.rounds = 10;
        sim.config.faults = FaultPlan::none()
            .with_seed(21)
            .with_dropout(0.3)
            .with_corruption(0.2, Corruption::NonFinite);
        sim.injector = FaultInjector::new(sim.config.faults.clone(), 6);
        let reports = sim.run();
        assert_eq!(reports.len(), 10);
        let mut saw_degradation = false;
        for r in &reports {
            assert!(r.mean_loss.is_finite(), "round {}: NaN loss", r.round);
            assert_eq!(
                r.faults.participants + r.faults.dropped + r.faults.quarantined,
                r.faults.clients,
                "round {}: partition broken {:?}",
                r.round,
                r.faults
            );
            if r.faults.dropped > 0 || r.faults.quarantined > 0 {
                saw_degradation = true;
            }
        }
        assert!(saw_degradation, "faults were configured but never fired");
        for c in &sim.clients {
            assert!(
                c.encoder.params().iter().all(Matrix::is_finite),
                "corrupt update leaked into a model"
            );
        }
        for m in sim.evaluate(&test) {
            assert!(m.accuracy.is_finite());
        }
    }

    #[test]
    fn scaled_noise_is_quarantined_by_the_norm_guard() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 5, 22);
        sim.config.rounds = 3;
        sim.config.faults = FaultPlan::none()
            .with_seed(22)
            .with_corruption(0.3, Corruption::ScaledNoise { factor: 1e6 });
        sim.injector = FaultInjector::new(sim.config.faults.clone(), 5);
        let reports = sim.run();
        let quarantined: usize = reports.iter().map(|r| r.faults.quarantined).sum();
        assert!(quarantined > 0, "norm guard never fired: {reports:?}");
        for c in &sim.clients {
            for m in c.encoder.params() {
                assert!(
                    m.as_slice().iter().all(|v| v.abs() < 1e5),
                    "scaled-noise corruption leaked into a model"
                );
            }
        }
    }

    #[test]
    fn lossy_links_price_retries_into_comm() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 5, 23);
        sim.config.rounds = 4;
        sim.config.faults = FaultPlan::none().with_seed(23).with_msg_loss(0.4);
        sim.injector = FaultInjector::new(sim.config.faults.clone(), 5);
        let reports = sim.run();
        let retried: usize = reports.iter().map(|r| r.faults.retried_messages).sum();
        assert!(retried > 0, "40% loss over 4 rounds must retry something");
        assert_eq!(sim.comm.retried_messages, retried);
        assert!(sim.comm.retried_bytes > 0);
        assert!(sim.comm.uploaded_bytes >= sim.comm.retried_bytes);
    }

    #[test]
    fn stragglers_within_bound_are_accepted_with_decay() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 5, 24);
        sim.config.rounds = 4;
        sim.config.faults = FaultPlan::none().with_seed(24).with_straggler(0.6);
        sim.injector = FaultInjector::new(sim.config.faults.clone(), 5);
        let reports = sim.run();
        let stale: usize = reports.iter().map(|r| r.faults.stale_accepted).sum();
        let dropped: usize = reports.iter().map(|r| r.faults.dropped).sum();
        assert!(stale > 0, "60% stragglers must produce stale acceptances");
        assert!(
            dropped > 0,
            "delays beyond the staleness bound must be rejected"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let make = || {
            let (mut sim, _) = make_sim(Strategy::fexiot_default(), 4, 25);
            sim.config.rounds = 5;
            sim.config.sybil_defense = true;
            sim.config.faults = FaultPlan::none()
                .with_seed(25)
                .with_dropout(0.25)
                .with_msg_loss(0.2)
                .with_crash(0.1, 2);
            sim.injector = FaultInjector::new(sim.config.faults.clone(), 4);
            sim
        };
        let mut original = make();
        original.run_round();
        original.run_round();
        let blob = original.checkpoint();
        let tail_a = [original.run_round(), original.run_round()];

        let mut resumed = make();
        resumed.restore(&blob).expect("restore");
        assert_eq!(resumed.rounds_completed(), 2);
        let tail_b = [resumed.run_round(), resumed.run_round()];

        for (a, b) in tail_a.iter().zip(&tail_b) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
            assert_eq!(a.cumulative_comm, b.cumulative_comm);
            assert_eq!(a.faults, b.faults);
        }
        for (ca, cb) in original.clients.iter().zip(&resumed.clients) {
            for (ma, mb) in ca.encoder.params().iter().zip(cb.encoder.params()) {
                assert_eq!(ma.max_abs_diff(mb), 0.0, "resumed weights diverged");
            }
        }
    }

    #[test]
    fn restore_rejects_corrupt_or_mismatched_blobs() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 3, 26);
        let blob = sim.checkpoint();
        assert!(sim.restore(&blob[..blob.len() / 2]).is_err());
        assert!(sim.restore(b"not a checkpoint").is_err());
        let (mut other, _) = make_sim(Strategy::FedAvg, 4, 26);
        assert!(other.restore(&blob).is_err(), "client count must match");
    }
}
