//! The federated training simulator: drives client local training, runs the
//! configured aggregation strategy, and accounts every byte moved.

use crate::client::Client;
use crate::comm::CommStats;
use crate::strategy::Strategy;
use fexiot_gnn::ContrastiveConfig;
use fexiot_graph::GraphDataset;
use fexiot_ml::{binary_cosine_split, Metrics};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::{param_flatten, param_weighted_average, ParamVec};
use fexiot_tensor::rng::Rng;
use fexiot_tensor::stats::cosine_similarity;

/// Federated-simulation configuration.
#[derive(Debug, Clone)]
pub struct FedConfig {
    pub strategy: Strategy,
    pub rounds: usize,
    /// Local contrastive training config per round.
    pub local: ContrastiveConfig,
    /// Differential privacy on client updates (paper §VI extension).
    pub dp: Option<crate::dp::DpConfig>,
    /// Pairwise-masked secure aggregation (paper §VI extension). Changes
    /// what the server can observe, not the aggregate itself.
    pub secure_aggregation: bool,
    /// FoolsGold-style Sybil down-weighting (paper §VI extension).
    pub sybil_defense: bool,
    /// FexIoT layer cadence: when true (default), layer `l` syncs every
    /// `l + 1` rounds (the Fig. 7 communication saving); when false, every
    /// layer syncs every round (ablation knob).
    pub layer_cadence: bool,
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::fexiot_default(),
            rounds: 10,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 32,
                ..Default::default()
            },
            dp: None,
            secure_aggregation: false,
            sybil_defense: false,
            layer_cadence: true,
            seed: 0,
        }
    }
}

/// Per-round report.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    pub round: usize,
    pub mean_loss: f64,
    pub cumulative_comm: CommStats,
}

/// The whole federation: clients + server state.
pub struct FedSim {
    pub clients: Vec<Client>,
    pub comm: CommStats,
    config: FedConfig,
    /// Persistent cluster state for FMTL / GCFL+.
    clusters: Vec<Vec<usize>>,
    /// `(offset, matrix_count)` per encoder layer, bottom-up.
    layer_spans: Vec<(usize, usize)>,
    /// Per-client trust weights from the Sybil defense (1.0 = trusted).
    trust: Vec<f64>,
    /// Privacy accountant, present when DP is enabled.
    accountant: Option<crate::dp::PrivacyAccountant>,
    rng: Rng,
    round: usize,
}

impl FedSim {
    /// Builds a federation. All clients must share the encoder architecture.
    pub fn new(clients: Vec<Client>, config: FedConfig) -> Self {
        assert!(!clients.is_empty(), "fed: no clients");
        let sizes = clients[0].encoder.layer_sizes();
        let mut layer_spans = Vec::with_capacity(sizes.len());
        let mut offset = 0;
        for s in sizes {
            layer_spans.push((offset, s));
            offset += s;
        }
        let all: Vec<usize> = (0..clients.len()).collect();
        let rng = Rng::seed_from_u64(config.seed);
        let trust = vec![1.0; clients.len()];
        let accountant = config
            .dp
            .as_ref()
            .map(|dp| crate::dp::PrivacyAccountant::new(dp.noise_multiplier));
        Self {
            clients,
            comm: CommStats::default(),
            config,
            clusters: vec![all],
            layer_spans,
            trust,
            accountant,
            rng,
            round: 0,
        }
    }

    /// Runs all configured rounds; returns per-round reports.
    pub fn run(&mut self) -> Vec<RoundReport> {
        (0..self.config.rounds).map(|_| self.run_round()).collect()
    }

    /// One federated round: local training then aggregation.
    pub fn run_round(&mut self) -> RoundReport {
        let local_cfg = ContrastiveConfig {
            seed: self.config.local.seed ^ (self.round as u64) << 17,
            ..self.config.local.clone()
        };
        let mut total_loss = 0.0;
        for c in &mut self.clients {
            total_loss += c.local_train(&local_cfg);
        }
        let mean_loss = total_loss / self.clients.len() as f64;

        // §VI extensions: privatize what the server will observe, then score
        // client trust from the (privatized) update histories.
        if let Some(dp) = self.config.dp {
            for c in &mut self.clients {
                c.privatize_last_update(&dp, &mut self.rng);
            }
            if let Some(acc) = &mut self.accountant {
                acc.record_release();
            }
        }
        if self.config.sybil_defense {
            let histories: Vec<Vec<f64>> = self
                .clients
                .iter()
                .map(|c| {
                    // Cumulative update direction over the retained history.
                    let mut acc: Vec<f64> = Vec::new();
                    for h in &c.update_history {
                        if acc.is_empty() {
                            acc = h.clone();
                        } else {
                            for (a, v) in acc.iter_mut().zip(h) {
                                *a += v;
                            }
                        }
                    }
                    acc
                })
                .collect();
            self.trust = crate::sybil::foolsgold_weights(&histories);
        }

        match self.config.strategy.clone() {
            Strategy::LocalOnly => {}
            Strategy::FedAvg => self.aggregate_full(&[(0..self.clients.len()).collect()]),
            Strategy::Fmtl { eps1, eps2 } => {
                self.refine_clusters(eps1, eps2, false);
                let clusters = self.clusters.clone();
                self.aggregate_full(&clusters);
            }
            Strategy::GcflPlus { eps1, eps2 } => {
                self.refine_clusters(eps1, eps2, true);
                let clusters = self.clusters.clone();
                self.aggregate_full(&clusters);
            }
            Strategy::FexIot { eps1, eps2 } => {
                let all: Vec<usize> = (0..self.clients.len()).collect();
                self.recursive_layerwise(0, &all, eps1, eps2);
            }
        }

        self.round += 1;
        RoundReport {
            round: self.round,
            mean_loss,
            cumulative_comm: self.comm,
        }
    }

    /// Full-model aggregation within each cluster (FedAvg / FMTL / GCFL+).
    /// Every member uploads its whole model; members of clusters with at
    /// least two clients download the cluster average.
    fn aggregate_full(&mut self, clusters: &[Vec<usize>]) {
        for cluster in clusters {
            for &c in cluster {
                self.comm.record_upload(fexiot_tensor::optim::param_bytes(
                    self.clients[c].encoder.params(),
                ));
            }
            if cluster.len() < 2 {
                continue; // Aggregating one model is the identity: no download.
            }
            let sets: Vec<&ParamVec> = cluster
                .iter()
                .map(|&c| self.clients[c].encoder.params())
                .collect();
            let weights = self.aggregation_weights(cluster);
            let avg = if self.config.secure_aggregation {
                crate::secure_agg::secure_weighted_average(
                    &sets,
                    &weights,
                    self.config.seed ^ (self.round as u64) << 8,
                )
            } else {
                param_weighted_average(&sets, &weights)
            };
            for &c in cluster {
                self.comm
                    .record_download(fexiot_tensor::optim::param_bytes(&avg));
                self.clients[c].install(avg.clone());
            }
        }
    }

    /// FMTL / GCFL+ cluster refinement: split a cluster in two when the
    /// stationarity criteria (Eq. 3, whole-model variant) fire.
    fn refine_clusters(&mut self, eps1: f64, eps2: f64, use_history: bool) {
        let mut next = Vec::new();
        for cluster in self.clusters.clone() {
            if cluster.len() < 2 {
                next.push(cluster);
                continue;
            }
            let deltas: Vec<Vec<f64>> = cluster
                .iter()
                .map(|&c| {
                    self.clients[c]
                        .last_delta
                        .as_ref()
                        .map(param_flatten)
                        .unwrap_or_default()
                })
                .collect();
            if deltas.iter().any(Vec::is_empty) {
                next.push(cluster);
                continue;
            }
            if !self.split_criteria(&cluster, &deltas, eps1, eps2) {
                next.push(cluster);
                continue;
            }
            // Similarity basis: latest update (FMTL) or update history (GCFL+).
            let basis: Vec<Vec<f64>> = if use_history {
                cluster
                    .iter()
                    .map(|&c| {
                        let h = &self.clients[c].update_history;
                        h.iter().flatten().copied().collect()
                    })
                    .collect()
            } else {
                deltas
            };
            // Histories can have unequal lengths early on; pad with zeros.
            let max_len = basis.iter().map(Vec::len).max().unwrap_or(0);
            let padded: Vec<Vec<f64>> = basis
                .into_iter()
                .map(|mut v| {
                    v.resize(max_len, 0.0);
                    v
                })
                .collect();
            let (a, b) = binary_cosine_split(&padded, &mut self.rng);
            next.push(a.into_iter().map(|i| cluster[i]).collect());
            next.push(b.into_iter().map(|i| cluster[i]).collect());
        }
        self.clusters = next;
    }

    /// Eq. (3): ϵ1 > ‖Σ_i (|G_i|/|G|) ΔW_i‖ and ϵ2 < max_i ‖ΔW_i‖.
    fn split_criteria(&self, cluster: &[usize], deltas: &[Vec<f64>], eps1: f64, eps2: f64) -> bool {
        let total: f64 = cluster
            .iter()
            .map(|&c| self.clients[c].sample_count() as f64)
            .sum();
        if total == 0.0 {
            return false;
        }
        let dim = deltas[0].len();
        let mut weighted_sum = vec![0.0; dim];
        let mut max_norm = 0.0f64;
        for (&c, d) in cluster.iter().zip(deltas) {
            let w = self.clients[c].sample_count() as f64 / total;
            for (s, &v) in weighted_sum.iter_mut().zip(d) {
                *s += w * v;
            }
            max_norm = max_norm.max(d.iter().map(|v| v * v).sum::<f64>().sqrt());
        }
        let mean_norm = weighted_sum.iter().map(|v| v * v).sum::<f64>().sqrt();
        eps1 > mean_norm && eps2 < max_norm
    }

    /// Algorithm 1: `RecursiveClusteringAgg(l, cluster)`. Traffic follows the
    /// paper's layer-wise scheme in two ways: (i) singleton clusters stop
    /// syncing (aggregating one model is a no-op), and (ii) upper layers sync
    /// on a slower cadence — layer `l` is exchanged every `l + 1` rounds.
    /// The cadence operationalizes the paper's observation that "from the
    /// bottom up, the degree of similarity among deep models decreases":
    /// upper layers are more client-specific, so averaging them every round
    /// buys little, and skipping them is where FexIoT's ~40% communication
    /// saving over whole-model strategies comes from (Fig. 7).
    fn recursive_layerwise(&mut self, layer: usize, subset: &[usize], eps1: f64, eps2: f64) {
        if layer >= self.layer_spans.len() || subset.len() < 2 {
            return;
        }
        if self.config.layer_cadence && !self.round.is_multiple_of(layer + 1) {
            // This layer is off-cadence this round: no upload, no aggregation,
            // no split decision; continue with the same cluster below.
            self.recursive_layerwise(layer + 1, subset, eps1, eps2);
            return;
        }
        let (offset, len) = self.layer_spans[layer];
        let layer_bytes = |client: &Client| {
            client.encoder.params()[offset..offset + len]
                .iter()
                .map(Matrix::len)
                .sum::<usize>()
                * std::mem::size_of::<f64>()
        };
        // Upload layer l.
        for &c in subset {
            let bytes = layer_bytes(&self.clients[c]);
            self.comm.record_upload(bytes);
        }
        // Layer-l deltas for the split criteria.
        let layer_deltas: Vec<Vec<f64>> = subset
            .iter()
            .map(|&c| match &self.clients[c].last_delta {
                Some(d) => {
                    let mut flat = Vec::new();
                    for m in &d[offset..offset + len] {
                        flat.extend_from_slice(m.as_slice());
                    }
                    flat
                }
                None => Vec::new(),
            })
            .collect();

        let split = !layer_deltas.iter().any(Vec::is_empty)
            && self.split_criteria(subset, &layer_deltas, eps1, eps2);

        if split {
            // Cosine similarity of the layer *weights* (Alg. 1 line 13).
            let weights_flat: Vec<Vec<f64>> = subset
                .iter()
                .map(|&c| {
                    let mut flat = Vec::new();
                    for m in &self.clients[c].encoder.params()[offset..offset + len] {
                        flat.extend_from_slice(m.as_slice());
                    }
                    flat
                })
                .collect();
            let (a, b) = binary_cosine_split(&weights_flat, &mut self.rng);
            let sub_a: Vec<usize> = a.into_iter().map(|i| subset[i]).collect();
            let sub_b: Vec<usize> = b.into_iter().map(|i| subset[i]).collect();
            self.aggregate_layer(layer, &sub_a);
            self.aggregate_layer(layer, &sub_b);
            self.recursive_layerwise(layer + 1, &sub_a, eps1, eps2);
            self.recursive_layerwise(layer + 1, &sub_b, eps1, eps2);
        } else {
            self.aggregate_layer(layer, subset);
            self.recursive_layerwise(layer + 1, subset, eps1, eps2);
        }
    }

    /// Weighted average of one layer within a cluster, installed to members.
    fn aggregate_layer(&mut self, layer: usize, subset: &[usize]) {
        if subset.len() < 2 {
            return;
        }
        let (offset, len) = self.layer_spans[layer];
        let sets: Vec<ParamVec> = subset
            .iter()
            .map(|&c| self.clients[c].encoder.params()[offset..offset + len].to_vec())
            .collect();
        let refs: Vec<&ParamVec> = sets.iter().collect();
        let weights = self.aggregation_weights(subset);
        let avg = if self.config.secure_aggregation {
            crate::secure_agg::secure_weighted_average(
                &refs,
                &weights,
                self.config.seed ^ (self.round as u64) << 8 ^ (layer as u64) << 4,
            )
        } else {
            param_weighted_average(&refs, &weights)
        };
        let bytes: usize = avg.iter().map(Matrix::len).sum::<usize>() * std::mem::size_of::<f64>();
        for &c in subset {
            self.comm.record_download(bytes);
            self.clients[c].install_layer(offset, &avg);
        }
    }

    /// Sample-count weights scaled by Sybil-defense trust. Falls back to
    /// plain sample counts if the defense zeroed everything out.
    fn aggregation_weights(&self, subset: &[usize]) -> Vec<f64> {
        let weighted: Vec<f64> = subset
            .iter()
            .map(|&c| self.clients[c].sample_count() as f64 * self.trust[c])
            .collect();
        if weighted.iter().sum::<f64>() > 0.0 {
            weighted
        } else {
            subset
                .iter()
                .map(|&c| self.clients[c].sample_count() as f64)
                .collect()
        }
    }

    /// Current FMTL/GCFL+ cluster assignment (for diagnostics).
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Per-client trust weights from the Sybil defense (all 1.0 when off).
    pub fn trust(&self) -> &[f64] {
        &self.trust
    }

    /// Cumulative `(epsilon, delta)`-DP guarantee spent so far, if DP is on.
    pub fn privacy_epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    /// Evaluates every client on a shared test set.
    pub fn evaluate(&mut self, test: &GraphDataset) -> Vec<Metrics> {
        self.clients.iter_mut().map(|c| c.evaluate(test)).collect()
    }

    /// Mean pairwise cosine similarity of client models (convergence probe).
    pub fn model_similarity(&self) -> f64 {
        let flats: Vec<Vec<f64>> = self
            .clients
            .iter()
            .map(|c| param_flatten(c.encoder.params()))
            .collect();
        let mut total = 0.0;
        let mut n = 0usize;
        for i in 0..flats.len() {
            for j in (i + 1)..flats.len() {
                total += cosine_similarity(&flats[i], &flats[j]);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_gnn::{Encoder, Gin};
    use fexiot_graph::{generate_dataset, DatasetConfig};

    fn make_sim(strategy: Strategy, n_clients: usize, seed: u64) -> (FedSim, GraphDataset) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 80;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let splits = train.dirichlet_split(n_clients, 1.0, &mut rng);
        let d = train.graphs[0].nodes[0].features.len();
        let template = Gin::new(d, &[12], 6, &mut rng);
        let clients = splits
            .into_iter()
            .enumerate()
            .map(|(i, data)| Client::new(i, Encoder::Gin(template.clone()), data))
            .collect();
        let config = FedConfig {
            strategy,
            rounds: 2,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 12,
                ..Default::default()
            },
            seed,
            ..Default::default()
        };
        (FedSim::new(clients, config), test)
    }

    #[test]
    fn fedavg_synchronizes_models() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 4, 1);
        sim.run();
        assert!(
            sim.model_similarity() > 0.999,
            "similarity {}",
            sim.model_similarity()
        );
        assert!(sim.comm.total_bytes() > 0);
    }

    #[test]
    fn local_only_never_communicates() {
        let (mut sim, _) = make_sim(Strategy::LocalOnly, 4, 2);
        sim.run();
        assert_eq!(sim.comm.total_bytes(), 0);
        assert!(
            sim.model_similarity() < 0.9999,
            "local models should diverge"
        );
    }

    #[test]
    fn fexiot_uses_less_traffic_than_fedavg() {
        let (mut avg_sim, _) = make_sim(Strategy::FedAvg, 6, 3);
        avg_sim.run();
        let (mut fex_sim, _) = make_sim(Strategy::fexiot_default(), 6, 3);
        fex_sim.run();
        assert!(
            fex_sim.comm.total_bytes() <= avg_sim.comm.total_bytes(),
            "fexiot {} vs fedavg {}",
            fex_sim.comm.total_bytes(),
            avg_sim.comm.total_bytes()
        );
    }

    #[test]
    fn evaluation_returns_per_client_metrics() {
        let (mut sim, test) = make_sim(Strategy::FedAvg, 3, 4);
        sim.run();
        let metrics = sim.evaluate(&test);
        assert_eq!(metrics.len(), 3);
        for m in metrics {
            assert!((0.0..=1.0).contains(&m.accuracy));
        }
    }

    #[test]
    fn fmtl_clusters_partition_clients() {
        let (mut sim, _) = make_sim(Strategy::fmtl_default(), 5, 5);
        sim.run();
        let mut seen: Vec<usize> = sim.clusters().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn magnn_federation_runs_layerwise_on_hetero_data() {
        // Heterogeneous platforms + MAGNN + FexIoT layer-wise recursion: the
        // per-type projection layer (5 matrices), metapath layer (7), and
        // readout (1) must all aggregate without shape errors.
        let mut rng = Rng::seed_from_u64(31);
        let mut cfg = fexiot_graph::DatasetConfig::small_hetero();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let splits = train.dirichlet_split(3, 1.0, &mut rng);
        let template =
            fexiot_gnn::Magnn::for_config(fexiot_graph::FeatureConfig::small(), 12, 6, 6, &mut rng);
        let clients: Vec<Client> = splits
            .into_iter()
            .enumerate()
            .map(|(i, data)| Client::new(i, Encoder::Magnn(template.clone()), data))
            .collect();
        let config = FedConfig {
            strategy: Strategy::fexiot_default(),
            rounds: 3,
            local: ContrastiveConfig {
                epochs: 1,
                pairs_per_epoch: 8,
                ..Default::default()
            },
            seed: 31,
            ..Default::default()
        };
        let mut sim = FedSim::new(clients, config);
        sim.run();
        assert!(sim.comm.total_bytes() > 0);
        for m in sim.evaluate(&test) {
            assert!(m.accuracy.is_finite());
        }
        for c in &sim.clients {
            assert!(c.encoder.params().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn dp_training_stays_finite_and_accounts_privacy() {
        let (mut sim, test) = make_sim(Strategy::FedAvg, 3, 7);
        sim.config.dp = Some(crate::dp::DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
        });
        sim.accountant = Some(crate::dp::PrivacyAccountant::new(1.0));
        sim.run();
        let eps = sim.privacy_epsilon(1e-5).expect("accountant present");
        assert!(eps > 0.0 && eps.is_finite(), "epsilon {eps}");
        for m in sim.evaluate(&test) {
            assert!(m.accuracy.is_finite());
        }
        for c in &sim.clients {
            assert!(c.encoder.params().iter().all(|m| m.is_finite()));
        }
    }

    #[test]
    fn secure_aggregation_matches_plain_aggregation() {
        let (mut plain, _) = make_sim(Strategy::FedAvg, 4, 8);
        let (mut secure, _) = make_sim(Strategy::FedAvg, 4, 8);
        secure.config.secure_aggregation = true;
        plain.run();
        secure.run();
        for (a, b) in plain.clients.iter().zip(&secure.clients) {
            for (ma, mb) in a.encoder.params().iter().zip(b.encoder.params()) {
                assert!(ma.max_abs_diff(mb) < 1e-6, "secure aggregation diverged");
            }
        }
    }

    #[test]
    fn sybil_defense_downweights_replicas() {
        // Clone one client's dataset across three "sybils"; honest clients
        // keep distinct data. After rounds, sybil trust should be lowest.
        let (mut sim, _) = make_sim(Strategy::FedAvg, 6, 9);
        sim.config.sybil_defense = true;
        // Make clients 0,1,2 identical replicas (same data ⇒ same updates,
        // since local seeds derive from client ids we align those too).
        let template = sim.clients[0].data.clone();
        for i in 1..3 {
            sim.clients[i].data = template.clone();
            sim.clients[i].labels = sim.clients[0].labels.clone();
            sim.clients[i].classes = sim.clients[0].classes.clone();
            sim.clients[i].id = sim.clients[0].id; // identical pair sampling
        }
        sim.run();
        let trust = sim.trust().to_vec();
        let sybil_mean = (trust[0] + trust[1] + trust[2]) / 3.0;
        let honest_mean = (trust[3] + trust[4] + trust[5]) / 3.0;
        assert!(
            sybil_mean < honest_mean,
            "sybils {sybil_mean} should be trusted less than honest {honest_mean}: {trust:?}"
        );
    }

    #[test]
    fn reports_track_rounds_and_comm_monotone() {
        let (mut sim, _) = make_sim(Strategy::FedAvg, 3, 6);
        let reports = sim.run();
        assert_eq!(reports.len(), 2);
        assert!(
            reports[0].cumulative_comm.total_bytes() <= reports[1].cumulative_comm.total_bytes()
        );
        assert_eq!(reports[1].round, 2);
    }
}
