//! Fault injection for the federated simulation.
//!
//! Smart-home hubs are the least reliable tier of federated hardware: they
//! drop offline, straggle behind the round clock, crash and rejoin, lose
//! messages on flaky uplinks, and occasionally ship garbage updates. A
//! [`FaultPlan`] describes those failure processes as seeded probabilities;
//! the [`FaultInjector`] draws a concrete [`RoundFaults`] realization per
//! round from its own RNG stream, so fault randomness never perturbs the
//! training stream — `FaultPlan::none()` leaves the simulator bit-identical
//! to a fault-free run (locked by `tests/golden.rs`).

use fexiot_tensor::optim::ParamVec;
use fexiot_tensor::rng::Rng;

/// Ticks spent waiting in exponential backoff when a message needed
/// `attempts` transmissions: the k-th retry waits `2^(k-1)` ticks, so
/// delivery on attempt `a` cost `2^(a-1) - 1` ticks in total.
///
/// # Saturation contract
/// A message that exhausts its retry budget is charged as if it had been
/// transmitted `1 + max_retries` times — i.e.
/// `backoff_ticks_for(max_retries + 1)`, one doubling beyond the last
/// successful-delivery case — and the
/// result **saturates at `usize::MAX`** instead of overflowing once
/// `attempts - 1` reaches the word size. Saturation is unreachable under any
/// sane retry budget (it needs 60+ retries); the clamp exists so a
/// pathological `FaultPlan` degrades to "waited forever" rather than
/// wrapping to a tiny tick count and corrupting critical-path attribution.
pub fn backoff_ticks_for(attempts: usize) -> usize {
    let doublings = attempts.saturating_sub(1);
    if doublings >= usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << doublings) - 1
    }
}

/// Rounds of delay the server actually waits out for a straggler: the full
/// delay when it is within the staleness bound, otherwise the bound (the
/// server stops waiting there and drops the update as too stale).
pub fn straggler_wait(delay: usize, staleness_bound: usize) -> usize {
    delay.min(staleness_bound)
}

/// How a corrupted upload is damaged before the server sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Poison entries with NaN / ±Inf (bit-flip or serialization bugs).
    NonFinite,
    /// Scale the whole update by `factor` (fixed-point overflow, poisoning).
    /// Values stay finite, so detection relies on the norm guard.
    ScaledNoise { factor: f64 },
}

/// Seeded description of every failure process the simulator can inject.
/// All probabilities are per-client per-round; `none()` disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's dedicated RNG stream.
    pub seed: u64,
    /// P(client is offline this round) — no training, no sync.
    pub dropout: f64,
    /// P(client crashes this round); it stays down for `crash_rounds`
    /// subsequent rounds, then rejoins with its last installed model.
    pub crash: f64,
    /// How many rounds a crashed client stays down.
    pub crash_rounds: usize,
    /// P(client straggles): it trains, but its upload arrives late.
    pub straggler: f64,
    /// Straggler delay is drawn uniformly from `1..=straggler_max_delay`
    /// simulated ticks.
    pub straggler_max_delay: usize,
    /// Late updates within this many ticks are still accepted (decayed);
    /// later ones are rejected as too stale.
    pub staleness_bound: usize,
    /// Per-tick multiplicative decay on an accepted stale update's
    /// aggregation weight.
    pub staleness_decay: f64,
    /// P(one message transmission is lost), per attempt, both directions.
    pub msg_loss: f64,
    /// Retransmissions allowed after a lost first attempt (exponential
    /// backoff: the k-th retry waits `2^(k-1)` ticks).
    pub max_retries: usize,
    /// P(client's upload is corrupted in flight).
    pub corrupt: f64,
    /// What corruption does to the update.
    pub corruption: Corruption,
    /// Quarantine a finite update whose parameter norm exceeds this multiple
    /// of the round's lower-quartile contributor norm (catches `ScaledNoise`
    /// even when corrupted uploads are the majority of a round).
    pub norm_guard: f64,
    /// P(an edge aggregator is offline this round). Only drawn when the
    /// simulator runs a hierarchical topology (2+ aggregators).
    pub agg_dropout: f64,
    /// P(an edge aggregator crashes this round); it stays down for
    /// `agg_crash_rounds` subsequent rounds, then rejoins.
    pub agg_crash: f64,
    /// How many rounds a crashed aggregator stays down.
    pub agg_crash_rounds: usize,
    /// P(an edge aggregator straggles): its whole cohort's updates arrive
    /// late at the server.
    pub agg_straggler: f64,
    /// Aggregator straggler delay is drawn uniformly from
    /// `1..=agg_straggler_max_delay` simulated ticks.
    pub agg_straggler_max_delay: usize,
}

impl FaultPlan {
    /// The fault-free plan: the simulator behaves exactly like the
    /// pre-fault-injection implementation (no extra RNG draws).
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout: 0.0,
            crash: 0.0,
            crash_rounds: 2,
            straggler: 0.0,
            straggler_max_delay: 3,
            staleness_bound: 2,
            staleness_decay: 0.5,
            msg_loss: 0.0,
            max_retries: 3,
            corrupt: 0.0,
            corruption: Corruption::NonFinite,
            norm_guard: 10.0,
            agg_dropout: 0.0,
            agg_crash: 0.0,
            agg_crash_rounds: 2,
            agg_straggler: 0.0,
            agg_straggler_max_delay: 3,
        }
    }

    /// True when any failure process has nonzero probability.
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0
            || self.crash > 0.0
            || self.straggler > 0.0
            || self.msg_loss > 0.0
            || self.corrupt > 0.0
            || self.agg_faults_active()
    }

    /// True when any *aggregator-tier* failure process has nonzero
    /// probability (only realized under a hierarchical topology).
    pub fn agg_faults_active(&self) -> bool {
        self.agg_dropout > 0.0 || self.agg_crash > 0.0 || self.agg_straggler > 0.0
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout = p;
        self
    }

    pub fn with_crash(mut self, p: f64, down_rounds: usize) -> Self {
        self.crash = p;
        self.crash_rounds = down_rounds;
        self
    }

    pub fn with_straggler(mut self, p: f64) -> Self {
        self.straggler = p;
        self
    }

    pub fn with_msg_loss(mut self, p: f64) -> Self {
        self.msg_loss = p;
        self
    }

    pub fn with_corruption(mut self, p: f64, kind: Corruption) -> Self {
        self.corrupt = p;
        self.corruption = kind;
        self
    }

    pub fn with_agg_dropout(mut self, p: f64) -> Self {
        self.agg_dropout = p;
        self
    }

    pub fn with_agg_crash(mut self, p: f64, down_rounds: usize) -> Self {
        self.agg_crash = p;
        self.agg_crash_rounds = down_rounds;
        self
    }

    pub fn with_agg_straggler(mut self, p: f64) -> Self {
        self.agg_straggler = p;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// One client's fate for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Participation {
    /// Trains and syncs normally.
    Active,
    /// Offline this round: no training, no messages.
    Dropout,
    /// Down from an earlier crash (or crashing right now).
    Crashed,
    /// Trains, but the upload lands `delay` ticks late.
    Straggler { delay: usize },
}

impl Participation {
    /// True when the client runs local training this round.
    pub fn trains(&self) -> bool {
        matches!(self, Participation::Active | Participation::Straggler { .. })
    }
}

/// Concrete realization of the fault plan for one round.
#[derive(Debug, Clone)]
pub struct RoundFaults {
    pub participation: Vec<Participation>,
    /// Whether each client's upload is corrupted in flight.
    pub corrupt: Vec<bool>,
    /// Upload-link attempts per client: `Some(k)` delivered on attempt `k`,
    /// `None` lost even after every retry.
    pub up_attempts: Vec<Option<usize>>,
    /// Download-link attempts per client, same encoding.
    pub down_attempts: Vec<Option<usize>>,
}

impl RoundFaults {
    /// A fault-free realization for `n` clients.
    pub fn clean(n: usize) -> Self {
        Self {
            participation: vec![Participation::Active; n],
            corrupt: vec![false; n],
            up_attempts: vec![Some(1); n],
            down_attempts: vec![Some(1); n],
        }
    }

    /// Backoff ticks spent on retries this round: the k-th retry waits
    /// `2^(k-1)` ticks, so a message delivered on attempt `a` waited
    /// `2^(a-1) - 1` ticks; a lost message waited the full budget.
    pub fn backoff_ticks(&self, max_retries: usize) -> usize {
        let spent =
            |att: &Option<usize>| backoff_ticks_for(att.unwrap_or(max_retries + 1));
        self.up_attempts.iter().map(spent).sum::<usize>()
            + self.down_attempts.iter().map(spent).sum::<usize>()
    }
}

/// One edge aggregator's fate for one round (hierarchical topology only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStatus {
    /// Forwards its cohort's updates normally.
    Up,
    /// Offline (dropout, or down from an earlier crash): its cohort must be
    /// failed over or skipped for the round.
    Down,
    /// Forwards, but `delay` ticks late — the server waits the whole cohort
    /// out, which makes the aggregator the round's critical-path cause.
    Straggler { delay: usize },
}

/// Concrete aggregator-tier realization for one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRoundFaults {
    pub status: Vec<AggStatus>,
}

impl AggRoundFaults {
    /// A fault-free realization for `n` aggregators.
    pub fn clean(n: usize) -> Self {
        Self {
            status: vec![AggStatus::Up; n],
        }
    }

    /// How many aggregators are down this round.
    pub fn down_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, AggStatus::Down))
            .count()
    }
}

/// Draws per-round fault realizations and applies corruption. Owns a
/// dedicated RNG stream plus the cross-round crash state.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    /// Per-client round index until which the client is down (exclusive).
    down_until: Vec<usize>,
    /// Per-aggregator round index until which the aggregator is down
    /// (exclusive). Sized lazily on the first hierarchical draw so flat
    /// federations carry no aggregator state.
    agg_down_until: Vec<usize>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, n_clients: usize) -> Self {
        let rng = Rng::seed_from_u64(plan.seed ^ 0xFA171E57);
        Self {
            plan,
            rng,
            down_until: vec![0; n_clients],
            agg_down_until: Vec::new(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws one round's realization. Call exactly once per round; the
    /// stream is deterministic in (`plan.seed`, call order).
    pub fn draw_round(&mut self, round: usize) -> RoundFaults {
        let n = self.down_until.len();
        let mut out = RoundFaults::clean(n);
        for c in 0..n {
            // Crash state first: a client that is down stays down.
            if self.down_until[c] > round {
                out.participation[c] = Participation::Crashed;
                continue;
            }
            if self.plan.crash > 0.0 && self.rng.bool(self.plan.crash) {
                self.down_until[c] = round + 1 + self.plan.crash_rounds;
                out.participation[c] = Participation::Crashed;
                continue;
            }
            if self.plan.dropout > 0.0 && self.rng.bool(self.plan.dropout) {
                out.participation[c] = Participation::Dropout;
                continue;
            }
            if self.plan.straggler > 0.0 && self.rng.bool(self.plan.straggler) {
                let delay = 1 + self.rng.usize(self.plan.straggler_max_delay.max(1));
                out.participation[c] = Participation::Straggler { delay };
            }
            if self.plan.corrupt > 0.0 {
                out.corrupt[c] = self.rng.bool(self.plan.corrupt);
            }
            if self.plan.msg_loss > 0.0 {
                out.up_attempts[c] = self.transmit();
                out.down_attempts[c] = self.transmit();
            }
        }
        out
    }

    /// One message over the lossy link with bounded retry: `Some(attempts)`
    /// when delivered, `None` when every attempt (1 + max_retries) was lost.
    fn transmit(&mut self) -> Option<usize> {
        (1..=(1 + self.plan.max_retries)).find(|_| !self.rng.bool(self.plan.msg_loss))
    }

    /// Draws one round's aggregator-tier realization for `n_aggs` edge
    /// aggregators. Call at most once per round, **after** [`draw_round`],
    /// and only when the topology is hierarchical and
    /// [`FaultPlan::agg_faults_active`] — the guard keeps the client fault
    /// stream bit-identical to a flat federation's (no extra RNG draws).
    ///
    /// [`draw_round`]: FaultInjector::draw_round
    pub fn draw_agg_round(&mut self, round: usize, n_aggs: usize) -> AggRoundFaults {
        if self.agg_down_until.len() < n_aggs {
            self.agg_down_until.resize(n_aggs, 0);
        }
        let mut out = AggRoundFaults::clean(n_aggs);
        for a in 0..n_aggs {
            // Crash state first: an aggregator that is down stays down.
            if self.agg_down_until[a] > round {
                out.status[a] = AggStatus::Down;
                continue;
            }
            if self.plan.agg_crash > 0.0 && self.rng.bool(self.plan.agg_crash) {
                self.agg_down_until[a] = round + 1 + self.plan.agg_crash_rounds;
                out.status[a] = AggStatus::Down;
                continue;
            }
            if self.plan.agg_dropout > 0.0 && self.rng.bool(self.plan.agg_dropout) {
                out.status[a] = AggStatus::Down;
                continue;
            }
            if self.plan.agg_straggler > 0.0 && self.rng.bool(self.plan.agg_straggler) {
                let delay = 1 + self.rng.usize(self.plan.agg_straggler_max_delay.max(1));
                out.status[a] = AggStatus::Straggler { delay };
            }
        }
        out
    }

    /// True when client `c` is inside an open crash window at `round` — i.e.
    /// its `Crashed` participation this round comes from the crash ledger,
    /// not a transient dropout. Valid after [`FaultInjector::draw_round`].
    pub fn client_crashed(&self, c: usize, round: usize) -> bool {
        self.down_until.get(c).is_some_and(|&until| until > round)
    }

    /// True when aggregator `a` is inside an open crash window at `round` —
    /// distinguishes `AggStatus::Down` from a crash vs. a transient dropout
    /// for causal-trace attribution. Valid after
    /// [`FaultInjector::draw_agg_round`].
    pub fn agg_crashed(&self, a: usize, round: usize) -> bool {
        self.agg_down_until.get(a).is_some_and(|&until| until > round)
    }

    /// Damages a copy of `params` according to the plan's corruption kind.
    pub fn corrupt_params(&mut self, params: &ParamVec) -> ParamVec {
        let mut damaged = params.clone();
        match self.plan.corruption {
            Corruption::NonFinite => {
                // Poison ~1% of entries (at least one) with NaN or ±Inf.
                for m in &mut damaged {
                    let len = m.len();
                    if len == 0 {
                        continue;
                    }
                    let hits = (len / 100).max(1);
                    for _ in 0..hits {
                        let at = self.rng.usize(len);
                        m.as_mut_slice()[at] = match self.rng.usize(3) {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            _ => f64::NEG_INFINITY,
                        };
                    }
                }
            }
            Corruption::ScaledNoise { factor } => {
                for m in &mut damaged {
                    for v in m.as_mut_slice() {
                        *v *= factor;
                    }
                }
            }
        }
        damaged
    }

    /// Checkpoint support: RNG stream + client and aggregator crash ledgers.
    pub fn state(&self) -> ([u64; 4], Vec<u64>, Vec<u64>) {
        (
            self.rng.state(),
            self.down_until.iter().map(|&r| r as u64).collect(),
            self.agg_down_until.iter().map(|&r| r as u64).collect(),
        )
    }

    /// Restores a [`FaultInjector::state`] snapshot. A mid-crash checkpoint
    /// (some `down_until` window still open) resumes with the same clients
    /// and aggregators down for the same remaining rounds.
    pub fn restore_state(&mut self, rng: [u64; 4], down_until: Vec<u64>, agg_down_until: Vec<u64>) {
        self.rng = Rng::from_state(rng);
        self.down_until = down_until.into_iter().map(|r| r as usize).collect();
        self.agg_down_until = agg_down_until.into_iter().map(|r| r as usize).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_tensor::matrix::Matrix;
    use fexiot_tensor::optim::param_is_finite;

    #[test]
    fn none_plan_is_inactive_and_clean() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan, 4);
        let rf = inj.draw_round(0);
        assert!(rf.participation.iter().all(|p| *p == Participation::Active));
        assert!(rf.corrupt.iter().all(|&c| !c));
        assert!(rf.up_attempts.iter().all(|&a| a == Some(1)));
        assert_eq!(rf.backoff_ticks(3), 0);
    }

    #[test]
    fn draws_are_deterministic_in_the_seed() {
        let plan = FaultPlan::none()
            .with_seed(7)
            .with_dropout(0.3)
            .with_straggler(0.2)
            .with_msg_loss(0.2);
        let draw = |mut inj: FaultInjector| {
            (0..5)
                .map(|r| inj.draw_round(r))
                .map(|rf| (rf.participation, rf.up_attempts))
                .collect::<Vec<_>>()
        };
        let a = draw(FaultInjector::new(plan.clone(), 6));
        let b = draw(FaultInjector::new(plan, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn crashed_clients_stay_down_then_rejoin() {
        let plan = FaultPlan::none().with_seed(3).with_crash(0.5, 2);
        let mut inj = FaultInjector::new(plan, 8);
        let mut saw_crash_then_rejoin = false;
        let mut down_spans: Vec<Vec<bool>> = vec![Vec::new(); 8];
        for r in 0..12 {
            let rf = inj.draw_round(r);
            for (c, spans) in down_spans.iter_mut().enumerate() {
                spans.push(rf.participation[c] == Participation::Crashed);
            }
        }
        for spans in &down_spans {
            // Every maximal run of `true` must span at least crash_rounds + 1
            // rounds unless cut off by the horizon, and must end in a rejoin.
            let mut run = 0;
            for (i, &down) in spans.iter().enumerate() {
                if down {
                    run += 1;
                } else {
                    if run > 0 {
                        assert!(run >= 3, "crash run of {run} rounds ended at {i}");
                        saw_crash_then_rejoin = true;
                    }
                    run = 0;
                }
            }
        }
        assert!(saw_crash_then_rejoin, "no crash/rejoin cycle observed");
    }

    #[test]
    fn straggler_delays_are_bounded() {
        let mut plan = FaultPlan::none().with_seed(11).with_straggler(1.0);
        plan.straggler_max_delay = 4;
        let mut inj = FaultInjector::new(plan, 16);
        let rf = inj.draw_round(0);
        for p in &rf.participation {
            match p {
                Participation::Straggler { delay } => {
                    assert!((1..=4).contains(delay), "delay {delay}")
                }
                other => panic!("expected straggler, got {other:?}"),
            }
        }
    }

    #[test]
    fn transmit_respects_retry_budget() {
        let mut plan = FaultPlan::none().with_seed(5).with_msg_loss(0.9);
        plan.max_retries = 2;
        let mut inj = FaultInjector::new(plan, 2);
        for r in 0..200 {
            let rf = inj.draw_round(r);
            for a in rf.up_attempts.iter().chain(&rf.down_attempts).flatten() {
                assert!((1..=3).contains(a), "attempts {a}");
            }
        }
    }

    #[test]
    fn nonfinite_corruption_is_detectable() {
        let plan = FaultPlan::none()
            .with_seed(1)
            .with_corruption(1.0, Corruption::NonFinite);
        let mut inj = FaultInjector::new(plan, 1);
        let params = vec![Matrix::full(4, 4, 0.5), Matrix::full(2, 3, -1.0)];
        let damaged = inj.corrupt_params(&params);
        assert!(!param_is_finite(&damaged));
        assert!(param_is_finite(&params), "original must be untouched");
    }

    #[test]
    fn scaled_noise_blows_up_the_norm() {
        let plan = FaultPlan::none()
            .with_seed(2)
            .with_corruption(1.0, Corruption::ScaledNoise { factor: 1e6 });
        let mut inj = FaultInjector::new(plan, 1);
        let params = vec![Matrix::full(3, 3, 0.1)];
        let damaged = inj.corrupt_params(&params);
        assert!(param_is_finite(&damaged));
        assert!(damaged[0][(0, 0)].abs() > 1e4);
    }

    #[test]
    fn injector_state_roundtrips() {
        let plan = FaultPlan::none().with_seed(9).with_dropout(0.4);
        let mut a = FaultInjector::new(plan.clone(), 5);
        for r in 0..3 {
            a.draw_round(r);
        }
        let (rng, down, agg_down) = a.state();
        let mut b = FaultInjector::new(plan, 5);
        b.restore_state(rng, down, agg_down);
        for r in 3..8 {
            assert_eq!(a.draw_round(r).participation, b.draw_round(r).participation);
        }
    }

    #[test]
    fn restore_mid_crash_window_preserves_remaining_downtime() {
        // Crash-heavy plan: by round 3 some client is inside an open
        // `down_until` window with high probability. Snapshot there, restore
        // into a fresh injector, and the resumed stream must match the
        // uninterrupted one draw-for-draw — including clients that stay
        // Crashed for the rest of their window without new RNG draws.
        let plan = FaultPlan::none().with_seed(3).with_crash(0.5, 3);
        let mut a = FaultInjector::new(plan.clone(), 8);
        for r in 0..3 {
            a.draw_round(r);
        }
        let (rng, down, agg_down) = a.state();
        assert!(
            down.iter().any(|&d| d > 3),
            "seed 3 must leave an open crash window at round 3: {down:?}"
        );
        let mut b = FaultInjector::new(plan, 8);
        b.restore_state(rng, down, agg_down);
        for r in 3..12 {
            let fa = a.draw_round(r);
            let fb = b.draw_round(r);
            assert_eq!(fa.participation, fb.participation, "round {r}");
        }
    }

    #[test]
    fn backoff_ticks_at_the_exact_retry_budget() {
        // Boundary: the plan's default budget is max_retries = 3, so a
        // message delivered on the very last allowed attempt (attempts ==
        // 1 + max_retries == 4) waited 1 + 2 + 4 = 7 ticks, and an exhausted
        // message is charged the same "waited the full budget" cost.
        let plan = FaultPlan::none();
        assert_eq!(plan.max_retries, 3);
        // attempts == max_retries: one retry still in hand.
        assert_eq!(backoff_ticks_for(plan.max_retries), 3);
        // attempts == max_retries + 1: delivery on the final attempt.
        assert_eq!(backoff_ticks_for(plan.max_retries + 1), 7);
        // A lost message (None) is charged exactly the exhausted-budget cost.
        let mut rf = RoundFaults::clean(1);
        rf.up_attempts[0] = None;
        rf.down_attempts[0] = Some(1);
        assert_eq!(
            rf.backoff_ticks(plan.max_retries),
            backoff_ticks_for(plan.max_retries + 1)
        );
    }

    #[test]
    fn backoff_ticks_saturate_instead_of_overflowing() {
        assert_eq!(backoff_ticks_for(0), 0);
        assert_eq!(backoff_ticks_for(1), 0);
        assert_eq!(backoff_ticks_for(2), 1);
        let bits = usize::BITS as usize;
        // Last in-range doubling, then saturation.
        assert_eq!(backoff_ticks_for(bits), (1usize << (bits - 1)) - 1);
        assert_eq!(backoff_ticks_for(bits + 1), usize::MAX);
        assert_eq!(backoff_ticks_for(usize::MAX), usize::MAX);
    }

    #[test]
    fn agg_faults_are_gated_and_deterministic() {
        let plan = FaultPlan::none().with_agg_dropout(0.5);
        assert!(plan.is_active());
        assert!(plan.agg_faults_active());
        assert!(!FaultPlan::none().agg_faults_active());
        let draw = |mut inj: FaultInjector| {
            (0..6).map(|r| inj.draw_agg_round(r, 4).status).collect::<Vec<_>>()
        };
        let a = draw(FaultInjector::new(plan.clone(), 10));
        let b = draw(FaultInjector::new(plan, 10));
        assert_eq!(a, b, "same seed, same aggregator fates");
        assert!(
            a.iter().flatten().any(|s| *s == AggStatus::Down),
            "50% dropout over 24 draws must down something"
        );
    }

    #[test]
    fn crashed_aggregators_stay_down_then_rejoin() {
        let plan = FaultPlan::none().with_seed(4).with_agg_crash(0.4, 2);
        let mut inj = FaultInjector::new(plan, 10);
        let mut spans: Vec<Vec<bool>> = vec![Vec::new(); 3];
        for r in 0..15 {
            let af = inj.draw_agg_round(r, 3);
            for (a, span) in spans.iter_mut().enumerate() {
                span.push(af.status[a] == AggStatus::Down);
            }
        }
        let mut saw_cycle = false;
        for span in &spans {
            let mut run = 0;
            for &down in span {
                if down {
                    run += 1;
                } else {
                    if run > 0 {
                        assert!(run >= 3, "aggregator crash run of {run} rounds");
                        saw_cycle = true;
                    }
                    run = 0;
                }
            }
        }
        assert!(saw_cycle, "no aggregator crash/rejoin cycle observed");
    }

    #[test]
    fn agg_straggler_delays_are_bounded() {
        let mut plan = FaultPlan::none().with_seed(6).with_agg_straggler(1.0);
        plan.agg_straggler_max_delay = 5;
        let mut inj = FaultInjector::new(plan, 4);
        let af = inj.draw_agg_round(0, 8);
        for s in &af.status {
            match s {
                AggStatus::Straggler { delay } => {
                    assert!((1..=5).contains(delay), "delay {delay}")
                }
                other => panic!("expected straggler, got {other:?}"),
            }
        }
    }
}
