//! Byte-level communication accounting for the federated simulation
//! (paper Fig. 7): every parameter upload and download is priced at its
//! `f64` wire size.

/// Running totals of data moved between clients and the server. Lossy links
/// re-send messages: every retransmission is priced like a first send *and*
/// tracked in the `retried_*` counters, so retries can only grow the totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    pub uploaded_bytes: usize,
    pub downloaded_bytes: usize,
    pub upload_messages: usize,
    pub download_messages: usize,
    /// Retransmissions (in either direction) after a lost first attempt.
    pub retried_messages: usize,
    /// Bytes consumed by those retransmissions (already included in the
    /// directional totals above).
    pub retried_bytes: usize,
    /// Aggregator-hop traffic (hierarchical topology only): pre-aggregated
    /// cohort updates each edge aggregator forwards to the server, one
    /// message per active aggregator per round.
    pub agg_forward_bytes: usize,
    pub agg_forward_messages: usize,
    /// Server aggregates broadcast back down the trunk to the aggregators
    /// (only on committed rounds — an aborted round broadcasts nothing).
    pub agg_broadcast_bytes: usize,
    pub agg_broadcast_messages: usize,
}

impl CommStats {
    pub fn record_upload(&mut self, bytes: usize) {
        self.uploaded_bytes += bytes;
        self.upload_messages += 1;
    }

    pub fn record_download(&mut self, bytes: usize) {
        self.downloaded_bytes += bytes;
        self.download_messages += 1;
    }

    /// Prices one upload that needed `attempts` transmissions (lost links
    /// re-send the same bytes; attempts beyond the first count as retries).
    pub fn record_upload_attempts(&mut self, bytes: usize, attempts: usize) {
        for _ in 0..attempts.max(1) {
            self.record_upload(bytes);
        }
        self.record_retries(bytes, attempts);
    }

    /// Prices one download that needed `attempts` transmissions.
    pub fn record_download_attempts(&mut self, bytes: usize, attempts: usize) {
        for _ in 0..attempts.max(1) {
            self.record_download(bytes);
        }
        self.record_retries(bytes, attempts);
    }

    /// Prices one aggregator→server trunk message carrying a pre-aggregated
    /// cohort update.
    pub fn record_agg_forward(&mut self, bytes: usize) {
        self.agg_forward_bytes += bytes;
        self.agg_forward_messages += 1;
    }

    /// Prices one server→aggregator trunk message carrying the committed
    /// aggregate back down for cohort distribution.
    pub fn record_agg_broadcast(&mut self, bytes: usize) {
        self.agg_broadcast_bytes += bytes;
        self.agg_broadcast_messages += 1;
    }

    fn record_retries(&mut self, bytes: usize, attempts: usize) {
        let retries = attempts.saturating_sub(1);
        self.retried_messages += retries;
        self.retried_bytes += retries * bytes;
    }

    /// Checks the invariants that hold by construction: retries are a subset
    /// of messages, retry bytes are a subset of moved bytes, and bytes never
    /// move without a message. Returns the first violated invariant; the
    /// simulator debug-asserts this at every round end.
    pub fn validate(&self) -> Result<(), String> {
        if self.retried_messages > self.upload_messages + self.download_messages {
            return Err(format!(
                "retried_messages {} exceeds total messages {}",
                self.retried_messages,
                self.upload_messages + self.download_messages
            ));
        }
        if self.retried_bytes > self.uploaded_bytes + self.downloaded_bytes {
            return Err(format!(
                "retried_bytes {} exceeds total bytes {}",
                self.retried_bytes,
                self.uploaded_bytes + self.downloaded_bytes
            ));
        }
        if self.upload_messages == 0 && self.uploaded_bytes != 0 {
            return Err(format!(
                "{} uploaded bytes without an upload message",
                self.uploaded_bytes
            ));
        }
        if self.download_messages == 0 && self.downloaded_bytes != 0 {
            return Err(format!(
                "{} downloaded bytes without a download message",
                self.downloaded_bytes
            ));
        }
        if self.agg_forward_messages == 0 && self.agg_forward_bytes != 0 {
            return Err(format!(
                "{} aggregator-forward bytes without a forward message",
                self.agg_forward_bytes
            ));
        }
        if self.agg_broadcast_messages == 0 && self.agg_broadcast_bytes != 0 {
            return Err(format!(
                "{} aggregator-broadcast bytes without a broadcast message",
                self.agg_broadcast_bytes
            ));
        }
        Ok(())
    }

    /// The traffic recorded since `earlier`, which must be a snapshot of
    /// this accumulator taken at some previous point (counters only grow, so
    /// the difference is well-defined; saturating keeps a misuse from
    /// panicking in release builds).
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        CommStats {
            uploaded_bytes: self.uploaded_bytes.saturating_sub(earlier.uploaded_bytes),
            downloaded_bytes: self.downloaded_bytes.saturating_sub(earlier.downloaded_bytes),
            upload_messages: self.upload_messages.saturating_sub(earlier.upload_messages),
            download_messages: self
                .download_messages
                .saturating_sub(earlier.download_messages),
            retried_messages: self.retried_messages.saturating_sub(earlier.retried_messages),
            retried_bytes: self.retried_bytes.saturating_sub(earlier.retried_bytes),
            agg_forward_bytes: self
                .agg_forward_bytes
                .saturating_sub(earlier.agg_forward_bytes),
            agg_forward_messages: self
                .agg_forward_messages
                .saturating_sub(earlier.agg_forward_messages),
            agg_broadcast_bytes: self
                .agg_broadcast_bytes
                .saturating_sub(earlier.agg_broadcast_bytes),
            agg_broadcast_messages: self
                .agg_broadcast_messages
                .saturating_sub(earlier.agg_broadcast_messages),
        }
    }

    /// Total bytes moved anywhere in the tree: client links plus the
    /// aggregator→server trunk (zero on flat topologies).
    pub fn total_bytes(&self) -> usize {
        self.uploaded_bytes + self.downloaded_bytes + self.agg_forward_bytes
            + self.agg_broadcast_bytes
    }

    /// Total transferred data in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = CommStats::default();
        c.record_upload(100);
        c.record_upload(50);
        c.record_download(200);
        assert_eq!(c.uploaded_bytes, 150);
        assert_eq!(c.downloaded_bytes, 200);
        assert_eq!(c.total_bytes(), 350);
        assert_eq!(c.upload_messages, 2);
        assert_eq!(c.download_messages, 1);
    }

    #[test]
    fn retries_are_priced_and_tracked() {
        let mut c = CommStats::default();
        c.record_upload_attempts(100, 3); // 1 send + 2 retries
        c.record_download_attempts(40, 1); // clean delivery
        assert_eq!(c.uploaded_bytes, 300);
        assert_eq!(c.upload_messages, 3);
        assert_eq!(c.downloaded_bytes, 40);
        assert_eq!(c.retried_messages, 2);
        assert_eq!(c.retried_bytes, 200);
    }

    #[test]
    fn validate_accepts_recorded_traffic_and_rejects_forgeries() {
        let mut c = CommStats::default();
        assert!(c.validate().is_ok(), "empty stats are consistent");
        c.record_upload_attempts(100, 3);
        c.record_download_attempts(40, 2);
        assert!(c.validate().is_ok(), "recorded traffic is consistent");

        let forged = CommStats {
            retried_messages: 10,
            ..CommStats::default()
        };
        assert!(forged.validate().is_err(), "retries without messages");
        let forged = CommStats {
            uploaded_bytes: 64,
            ..CommStats::default()
        };
        assert!(forged.validate().is_err(), "bytes without messages");
        let forged = CommStats {
            uploaded_bytes: 10,
            upload_messages: 1,
            retried_bytes: 100,
            retried_messages: 1,
            ..CommStats::default()
        };
        assert!(forged.validate().is_err(), "retry bytes exceed totals");
    }

    #[test]
    fn aggregator_hop_is_priced_and_validated() {
        let mut c = CommStats::default();
        c.record_agg_forward(500);
        c.record_agg_forward(500);
        c.record_agg_broadcast(300);
        assert_eq!(c.agg_forward_bytes, 1000);
        assert_eq!(c.agg_forward_messages, 2);
        assert_eq!(c.agg_broadcast_bytes, 300);
        assert_eq!(c.agg_broadcast_messages, 1);
        assert_eq!(c.total_bytes(), 1300);
        assert!(c.validate().is_ok());

        let forged = CommStats {
            agg_forward_bytes: 64,
            ..CommStats::default()
        };
        assert!(forged.validate().is_err(), "forward bytes without message");
        let forged = CommStats {
            agg_broadcast_bytes: 64,
            ..CommStats::default()
        };
        assert!(forged.validate().is_err(), "broadcast bytes without message");

        let later = {
            let mut l = c;
            l.record_agg_forward(100);
            l
        };
        let d = later.delta_since(&c);
        assert_eq!(d.agg_forward_bytes, 100);
        assert_eq!(d.agg_forward_messages, 1);
        assert_eq!(d.agg_broadcast_messages, 0);
    }

    #[test]
    fn megabytes_conversion() {
        let mut c = CommStats::default();
        c.record_upload(1024 * 1024);
        assert!((c.total_mb() - 1.0).abs() < 1e-12);
    }
}
