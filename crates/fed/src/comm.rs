//! Byte-level communication accounting for the federated simulation
//! (paper Fig. 7): every parameter upload and download is priced at its
//! `f64` wire size.

/// Running totals of data moved between clients and the server. Lossy links
/// re-send messages: every retransmission is priced like a first send *and*
/// tracked in the `retried_*` counters, so retries can only grow the totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    pub uploaded_bytes: usize,
    pub downloaded_bytes: usize,
    pub upload_messages: usize,
    pub download_messages: usize,
    /// Retransmissions (in either direction) after a lost first attempt.
    pub retried_messages: usize,
    /// Bytes consumed by those retransmissions (already included in the
    /// directional totals above).
    pub retried_bytes: usize,
}

impl CommStats {
    pub fn record_upload(&mut self, bytes: usize) {
        self.uploaded_bytes += bytes;
        self.upload_messages += 1;
    }

    pub fn record_download(&mut self, bytes: usize) {
        self.downloaded_bytes += bytes;
        self.download_messages += 1;
    }

    /// Prices one upload that needed `attempts` transmissions (lost links
    /// re-send the same bytes; attempts beyond the first count as retries).
    pub fn record_upload_attempts(&mut self, bytes: usize, attempts: usize) {
        for _ in 0..attempts.max(1) {
            self.record_upload(bytes);
        }
        self.record_retries(bytes, attempts);
    }

    /// Prices one download that needed `attempts` transmissions.
    pub fn record_download_attempts(&mut self, bytes: usize, attempts: usize) {
        for _ in 0..attempts.max(1) {
            self.record_download(bytes);
        }
        self.record_retries(bytes, attempts);
    }

    fn record_retries(&mut self, bytes: usize, attempts: usize) {
        let retries = attempts.saturating_sub(1);
        self.retried_messages += retries;
        self.retried_bytes += retries * bytes;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.uploaded_bytes + self.downloaded_bytes
    }

    /// Total transferred data in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = CommStats::default();
        c.record_upload(100);
        c.record_upload(50);
        c.record_download(200);
        assert_eq!(c.uploaded_bytes, 150);
        assert_eq!(c.downloaded_bytes, 200);
        assert_eq!(c.total_bytes(), 350);
        assert_eq!(c.upload_messages, 2);
        assert_eq!(c.download_messages, 1);
    }

    #[test]
    fn retries_are_priced_and_tracked() {
        let mut c = CommStats::default();
        c.record_upload_attempts(100, 3); // 1 send + 2 retries
        c.record_download_attempts(40, 1); // clean delivery
        assert_eq!(c.uploaded_bytes, 300);
        assert_eq!(c.upload_messages, 3);
        assert_eq!(c.downloaded_bytes, 40);
        assert_eq!(c.retried_messages, 2);
        assert_eq!(c.retried_bytes, 200);
    }

    #[test]
    fn megabytes_conversion() {
        let mut c = CommStats::default();
        c.record_upload(1024 * 1024);
        assert!((c.total_mb() - 1.0).abs() < 1e-12);
    }
}
