//! Byte-level communication accounting for the federated simulation
//! (paper Fig. 7): every parameter upload and download is priced at its
//! `f64` wire size.

/// Running totals of data moved between clients and the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    pub uploaded_bytes: usize,
    pub downloaded_bytes: usize,
    pub upload_messages: usize,
    pub download_messages: usize,
}

impl CommStats {
    pub fn record_upload(&mut self, bytes: usize) {
        self.uploaded_bytes += bytes;
        self.upload_messages += 1;
    }

    pub fn record_download(&mut self, bytes: usize) {
        self.downloaded_bytes += bytes;
        self.download_messages += 1;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.uploaded_bytes + self.downloaded_bytes
    }

    /// Total transferred data in megabytes.
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = CommStats::default();
        c.record_upload(100);
        c.record_upload(50);
        c.record_download(200);
        assert_eq!(c.uploaded_bytes, 150);
        assert_eq!(c.downloaded_bytes, 200);
        assert_eq!(c.total_bytes(), 350);
        assert_eq!(c.upload_messages, 2);
        assert_eq!(c.download_messages, 1);
    }

    #[test]
    fn megabytes_conversion() {
        let mut c = CommStats::default();
        c.record_upload(1024 * 1024);
        assert!((c.total_mb() - 1.0).abs() < 1e-12);
    }
}
