/root/repo/target/release/deps/fig7-123825c63c48e536.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-123825c63c48e536: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
