/root/repo/target/release/deps/fexiot_gnn-6fa137b1c8e8c225.d: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

/root/repo/target/release/deps/libfexiot_gnn-6fa137b1c8e8c225.rlib: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

/root/repo/target/release/deps/libfexiot_gnn-6fa137b1c8e8c225.rmeta: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

crates/gnn/src/lib.rs:
crates/gnn/src/encoder.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/gin.rs:
crates/gnn/src/magnn.rs:
crates/gnn/src/serialize.rs:
crates/gnn/src/trainer.rs:
