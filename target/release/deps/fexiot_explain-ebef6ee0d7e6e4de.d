/root/repo/target/release/deps/fexiot_explain-ebef6ee0d7e6e4de.d: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

/root/repo/target/release/deps/libfexiot_explain-ebef6ee0d7e6e4de.rlib: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

/root/repo/target/release/deps/libfexiot_explain-ebef6ee0d7e6e4de.rmeta: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

crates/explain/src/lib.rs:
crates/explain/src/model.rs:
crates/explain/src/quality.rs:
crates/explain/src/search.rs:
crates/explain/src/shap.rs:
