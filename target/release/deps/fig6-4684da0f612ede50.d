/root/repo/target/release/deps/fig6-4684da0f612ede50.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-4684da0f612ede50: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
