/root/repo/target/release/deps/fig4-defaf67c11b165b1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-defaf67c11b165b1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
