/root/repo/target/release/deps/table1-d396c81a9543248d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d396c81a9543248d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
