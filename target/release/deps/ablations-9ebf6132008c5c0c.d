/root/repo/target/release/deps/ablations-9ebf6132008c5c0c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-9ebf6132008c5c0c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
