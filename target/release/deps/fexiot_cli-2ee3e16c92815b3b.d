/root/repo/target/release/deps/fexiot_cli-2ee3e16c92815b3b.d: crates/core/src/bin/fexiot-cli.rs

/root/repo/target/release/deps/fexiot_cli-2ee3e16c92815b3b: crates/core/src/bin/fexiot-cli.rs

crates/core/src/bin/fexiot-cli.rs:
