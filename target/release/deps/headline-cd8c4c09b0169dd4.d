/root/repo/target/release/deps/headline-cd8c4c09b0169dd4.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-cd8c4c09b0169dd4: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
