/root/repo/target/release/deps/fexiot_graph-ce90d128f12e2528.d: crates/graph/src/lib.rs crates/graph/src/attacks.rs crates/graph/src/builder.rs crates/graph/src/corpus.rs crates/graph/src/dataset.rs crates/graph/src/device.rs crates/graph/src/events.rs crates/graph/src/graph.rs crates/graph/src/online.rs crates/graph/src/rule.rs crates/graph/src/vuln.rs

/root/repo/target/release/deps/libfexiot_graph-ce90d128f12e2528.rlib: crates/graph/src/lib.rs crates/graph/src/attacks.rs crates/graph/src/builder.rs crates/graph/src/corpus.rs crates/graph/src/dataset.rs crates/graph/src/device.rs crates/graph/src/events.rs crates/graph/src/graph.rs crates/graph/src/online.rs crates/graph/src/rule.rs crates/graph/src/vuln.rs

/root/repo/target/release/deps/libfexiot_graph-ce90d128f12e2528.rmeta: crates/graph/src/lib.rs crates/graph/src/attacks.rs crates/graph/src/builder.rs crates/graph/src/corpus.rs crates/graph/src/dataset.rs crates/graph/src/device.rs crates/graph/src/events.rs crates/graph/src/graph.rs crates/graph/src/online.rs crates/graph/src/rule.rs crates/graph/src/vuln.rs

crates/graph/src/lib.rs:
crates/graph/src/attacks.rs:
crates/graph/src/builder.rs:
crates/graph/src/corpus.rs:
crates/graph/src/dataset.rs:
crates/graph/src/device.rs:
crates/graph/src/events.rs:
crates/graph/src/graph.rs:
crates/graph/src/online.rs:
crates/graph/src/rule.rs:
crates/graph/src/vuln.rs:
