/root/repo/target/release/deps/fig8-ef6685ce3a9d405d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-ef6685ce3a9d405d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
