/root/repo/target/release/deps/fig9-3729d1eee895144a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-3729d1eee895144a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
