/root/repo/target/release/deps/fexiot_nlp-29e516f09c2f602e.d: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

/root/repo/target/release/deps/libfexiot_nlp-29e516f09c2f602e.rlib: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

/root/repo/target/release/deps/libfexiot_nlp-29e516f09c2f602e.rmeta: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

crates/nlp/src/lib.rs:
crates/nlp/src/dtw.rs:
crates/nlp/src/embed.rs:
crates/nlp/src/features.rs:
crates/nlp/src/jenks.rs:
crates/nlp/src/lexicon.rs:
crates/nlp/src/parse.rs:
crates/nlp/src/tokenize.rs:
