/root/repo/target/release/deps/fexiot-79351749a5b8de9f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libfexiot-79351749a5b8de9f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libfexiot-79351749a5b8de9f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/federation.rs:
crates/core/src/pipeline.rs:
