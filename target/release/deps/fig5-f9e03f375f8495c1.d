/root/repo/target/release/deps/fig5-f9e03f375f8495c1.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f9e03f375f8495c1: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
