/root/repo/target/release/deps/table3-ec8fae5400f3d7d7.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-ec8fae5400f3d7d7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
