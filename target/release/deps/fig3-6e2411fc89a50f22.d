/root/repo/target/release/deps/fig3-6e2411fc89a50f22.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-6e2411fc89a50f22: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
