/root/repo/target/release/deps/fexiot_tensor-819d296a9265d618.d: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libfexiot_tensor-819d296a9265d618.rlib: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libfexiot_tensor-819d296a9265d618.rmeta: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/autograd.rs:
crates/tensor/src/codec.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
