/root/repo/target/release/deps/table2-94e6033553bdb180.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-94e6033553bdb180: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
