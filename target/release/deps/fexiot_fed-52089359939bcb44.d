/root/repo/target/release/deps/fexiot_fed-52089359939bcb44.d: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

/root/repo/target/release/deps/libfexiot_fed-52089359939bcb44.rlib: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

/root/repo/target/release/deps/libfexiot_fed-52089359939bcb44.rmeta: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

crates/fed/src/lib.rs:
crates/fed/src/client.rs:
crates/fed/src/comm.rs:
crates/fed/src/dp.rs:
crates/fed/src/secure_agg.rs:
crates/fed/src/sim.rs:
crates/fed/src/strategy.rs:
crates/fed/src/sybil.rs:
