/root/repo/target/debug/examples/private_federation-5cf394c6de4c5683.d: crates/core/../../examples/private_federation.rs

/root/repo/target/debug/examples/private_federation-5cf394c6de4c5683: crates/core/../../examples/private_federation.rs

crates/core/../../examples/private_federation.rs:
