/root/repo/target/debug/examples/quickstart-67ae37b5d8180580.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-67ae37b5d8180580: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
