/root/repo/target/debug/examples/federated_training-afc7567ccd7ec4fa.d: crates/core/../../examples/federated_training.rs

/root/repo/target/debug/examples/federated_training-afc7567ccd7ec4fa: crates/core/../../examples/federated_training.rs

crates/core/../../examples/federated_training.rs:
