/root/repo/target/debug/examples/smart_home_audit-5adb19c092ee86cb.d: crates/core/../../examples/smart_home_audit.rs

/root/repo/target/debug/examples/smart_home_audit-5adb19c092ee86cb: crates/core/../../examples/smart_home_audit.rs

crates/core/../../examples/smart_home_audit.rs:
