/root/repo/target/debug/deps/fexiot_bench-dabc263890d327fa.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/plot.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/fexiot_bench-dabc263890d327fa: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/plot.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/table2.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fig9.rs:
crates/bench/src/plot.rs:
crates/bench/src/scale.rs:
crates/bench/src/table1.rs:
crates/bench/src/table2.rs:
crates/bench/src/table3.rs:
