/root/repo/target/debug/deps/proptest-3d4d725d0fbb4814.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3d4d725d0fbb4814.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3d4d725d0fbb4814.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
