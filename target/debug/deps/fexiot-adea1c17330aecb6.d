/root/repo/target/debug/deps/fexiot-adea1c17330aecb6.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/fexiot-adea1c17330aecb6: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/federation.rs:
crates/core/src/pipeline.rs:
