/root/repo/target/debug/deps/table3-0c53f43bdb2c4284.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-0c53f43bdb2c4284: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
