/root/repo/target/debug/deps/fexiot_tensor-fdb2b48ebb9a88f1.d: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libfexiot_tensor-fdb2b48ebb9a88f1.rlib: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libfexiot_tensor-fdb2b48ebb9a88f1.rmeta: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/autograd.rs:
crates/tensor/src/codec.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
