/root/repo/target/debug/deps/table1-f79dadfbf588bbd4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f79dadfbf588bbd4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
