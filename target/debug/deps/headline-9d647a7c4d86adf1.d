/root/repo/target/debug/deps/headline-9d647a7c4d86adf1.d: crates/bench/src/bin/headline.rs

/root/repo/target/debug/deps/headline-9d647a7c4d86adf1: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
