/root/repo/target/debug/deps/fexiot_graph-e8764d0949a862c7.d: crates/graph/src/lib.rs crates/graph/src/attacks.rs crates/graph/src/builder.rs crates/graph/src/corpus.rs crates/graph/src/dataset.rs crates/graph/src/device.rs crates/graph/src/events.rs crates/graph/src/graph.rs crates/graph/src/online.rs crates/graph/src/rule.rs crates/graph/src/vuln.rs

/root/repo/target/debug/deps/fexiot_graph-e8764d0949a862c7: crates/graph/src/lib.rs crates/graph/src/attacks.rs crates/graph/src/builder.rs crates/graph/src/corpus.rs crates/graph/src/dataset.rs crates/graph/src/device.rs crates/graph/src/events.rs crates/graph/src/graph.rs crates/graph/src/online.rs crates/graph/src/rule.rs crates/graph/src/vuln.rs

crates/graph/src/lib.rs:
crates/graph/src/attacks.rs:
crates/graph/src/builder.rs:
crates/graph/src/corpus.rs:
crates/graph/src/dataset.rs:
crates/graph/src/device.rs:
crates/graph/src/events.rs:
crates/graph/src/graph.rs:
crates/graph/src/online.rs:
crates/graph/src/rule.rs:
crates/graph/src/vuln.rs:
