/root/repo/target/debug/deps/fexiot_gnn-7c9a4dc6beab3836.d: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

/root/repo/target/debug/deps/libfexiot_gnn-7c9a4dc6beab3836.rlib: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

/root/repo/target/debug/deps/libfexiot_gnn-7c9a4dc6beab3836.rmeta: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

crates/gnn/src/lib.rs:
crates/gnn/src/encoder.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/gin.rs:
crates/gnn/src/magnn.rs:
crates/gnn/src/serialize.rs:
crates/gnn/src/trainer.rs:
