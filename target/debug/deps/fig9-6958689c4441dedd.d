/root/repo/target/debug/deps/fig9-6958689c4441dedd.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-6958689c4441dedd: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
