/root/repo/target/debug/deps/proptests-98cca269df400bd1.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-98cca269df400bd1: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
