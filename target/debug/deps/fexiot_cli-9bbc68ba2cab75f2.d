/root/repo/target/debug/deps/fexiot_cli-9bbc68ba2cab75f2.d: crates/core/src/bin/fexiot-cli.rs

/root/repo/target/debug/deps/fexiot_cli-9bbc68ba2cab75f2: crates/core/src/bin/fexiot-cli.rs

crates/core/src/bin/fexiot-cli.rs:
