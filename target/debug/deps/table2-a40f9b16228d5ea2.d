/root/repo/target/debug/deps/table2-a40f9b16228d5ea2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a40f9b16228d5ea2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
