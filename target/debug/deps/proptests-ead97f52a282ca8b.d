/root/repo/target/debug/deps/proptests-ead97f52a282ca8b.d: crates/nlp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ead97f52a282ca8b: crates/nlp/tests/proptests.rs

crates/nlp/tests/proptests.rs:
