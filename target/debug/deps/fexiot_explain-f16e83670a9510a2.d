/root/repo/target/debug/deps/fexiot_explain-f16e83670a9510a2.d: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

/root/repo/target/debug/deps/libfexiot_explain-f16e83670a9510a2.rlib: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

/root/repo/target/debug/deps/libfexiot_explain-f16e83670a9510a2.rmeta: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

crates/explain/src/lib.rs:
crates/explain/src/model.rs:
crates/explain/src/quality.rs:
crates/explain/src/search.rs:
crates/explain/src/shap.rs:
