/root/repo/target/debug/deps/fig3-54437556be75d0bf.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-54437556be75d0bf: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
