/root/repo/target/debug/deps/fexiot_explain-19f172bfab732e48.d: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

/root/repo/target/debug/deps/fexiot_explain-19f172bfab732e48: crates/explain/src/lib.rs crates/explain/src/model.rs crates/explain/src/quality.rs crates/explain/src/search.rs crates/explain/src/shap.rs

crates/explain/src/lib.rs:
crates/explain/src/model.rs:
crates/explain/src/quality.rs:
crates/explain/src/search.rs:
crates/explain/src/shap.rs:
