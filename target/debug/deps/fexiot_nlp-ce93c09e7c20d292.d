/root/repo/target/debug/deps/fexiot_nlp-ce93c09e7c20d292.d: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

/root/repo/target/debug/deps/libfexiot_nlp-ce93c09e7c20d292.rlib: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

/root/repo/target/debug/deps/libfexiot_nlp-ce93c09e7c20d292.rmeta: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

crates/nlp/src/lib.rs:
crates/nlp/src/dtw.rs:
crates/nlp/src/embed.rs:
crates/nlp/src/features.rs:
crates/nlp/src/jenks.rs:
crates/nlp/src/lexicon.rs:
crates/nlp/src/parse.rs:
crates/nlp/src/tokenize.rs:
