/root/repo/target/debug/deps/fexiot_gnn-f3185a61cb0d34c1.d: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

/root/repo/target/debug/deps/fexiot_gnn-f3185a61cb0d34c1: crates/gnn/src/lib.rs crates/gnn/src/encoder.rs crates/gnn/src/gcn.rs crates/gnn/src/gin.rs crates/gnn/src/magnn.rs crates/gnn/src/serialize.rs crates/gnn/src/trainer.rs

crates/gnn/src/lib.rs:
crates/gnn/src/encoder.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/gin.rs:
crates/gnn/src/magnn.rs:
crates/gnn/src/serialize.rs:
crates/gnn/src/trainer.rs:
