/root/repo/target/debug/deps/proptests-42d015a22565fa74.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-42d015a22565fa74: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
