/root/repo/target/debug/deps/fig7-02d270fe08b9e042.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-02d270fe08b9e042: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
