/root/repo/target/debug/deps/fig8-d044f0186a54c991.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d044f0186a54c991: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
