/root/repo/target/debug/deps/fexiot_tensor-13472687c6e630f3.d: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/fexiot_tensor-13472687c6e630f3: crates/tensor/src/lib.rs crates/tensor/src/autograd.rs crates/tensor/src/codec.rs crates/tensor/src/linalg.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/autograd.rs:
crates/tensor/src/codec.rs:
crates/tensor/src/linalg.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
