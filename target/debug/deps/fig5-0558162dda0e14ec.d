/root/repo/target/debug/deps/fig5-0558162dda0e14ec.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0558162dda0e14ec: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
