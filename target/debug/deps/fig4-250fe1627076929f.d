/root/repo/target/debug/deps/fig4-250fe1627076929f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-250fe1627076929f: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
