/root/repo/target/debug/deps/fexiot_fed-7f7099db91088bd8.d: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

/root/repo/target/debug/deps/libfexiot_fed-7f7099db91088bd8.rlib: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

/root/repo/target/debug/deps/libfexiot_fed-7f7099db91088bd8.rmeta: crates/fed/src/lib.rs crates/fed/src/client.rs crates/fed/src/comm.rs crates/fed/src/dp.rs crates/fed/src/secure_agg.rs crates/fed/src/sim.rs crates/fed/src/strategy.rs crates/fed/src/sybil.rs

crates/fed/src/lib.rs:
crates/fed/src/client.rs:
crates/fed/src/comm.rs:
crates/fed/src/dp.rs:
crates/fed/src/secure_agg.rs:
crates/fed/src/sim.rs:
crates/fed/src/strategy.rs:
crates/fed/src/sybil.rs:
