/root/repo/target/debug/deps/fexiot_ml-264b58f455175dd8.d: crates/ml/src/lib.rs crates/ml/src/deeplog.rs crates/ml/src/drift.rs crates/ml/src/forest.rs crates/ml/src/gboost.rs crates/ml/src/hawatcher.rs crates/ml/src/iforest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lstm.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/sgd.rs crates/ml/src/tree.rs crates/ml/src/tsne.rs

/root/repo/target/debug/deps/libfexiot_ml-264b58f455175dd8.rlib: crates/ml/src/lib.rs crates/ml/src/deeplog.rs crates/ml/src/drift.rs crates/ml/src/forest.rs crates/ml/src/gboost.rs crates/ml/src/hawatcher.rs crates/ml/src/iforest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lstm.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/sgd.rs crates/ml/src/tree.rs crates/ml/src/tsne.rs

/root/repo/target/debug/deps/libfexiot_ml-264b58f455175dd8.rmeta: crates/ml/src/lib.rs crates/ml/src/deeplog.rs crates/ml/src/drift.rs crates/ml/src/forest.rs crates/ml/src/gboost.rs crates/ml/src/hawatcher.rs crates/ml/src/iforest.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lstm.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/sgd.rs crates/ml/src/tree.rs crates/ml/src/tsne.rs

crates/ml/src/lib.rs:
crates/ml/src/deeplog.rs:
crates/ml/src/drift.rs:
crates/ml/src/forest.rs:
crates/ml/src/gboost.rs:
crates/ml/src/hawatcher.rs:
crates/ml/src/iforest.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/lstm.rs:
crates/ml/src/metrics.rs:
crates/ml/src/mlp.rs:
crates/ml/src/sgd.rs:
crates/ml/src/tree.rs:
crates/ml/src/tsne.rs:
