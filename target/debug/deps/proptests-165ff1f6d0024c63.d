/root/repo/target/debug/deps/proptests-165ff1f6d0024c63.d: crates/fed/tests/proptests.rs

/root/repo/target/debug/deps/proptests-165ff1f6d0024c63: crates/fed/tests/proptests.rs

crates/fed/tests/proptests.rs:
