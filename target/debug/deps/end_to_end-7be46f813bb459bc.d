/root/repo/target/debug/deps/end_to_end-7be46f813bb459bc.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7be46f813bb459bc: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
