/root/repo/target/debug/deps/golden-c0c9e9b987f26b81.d: crates/fed/tests/golden.rs

/root/repo/target/debug/deps/golden-c0c9e9b987f26b81: crates/fed/tests/golden.rs

crates/fed/tests/golden.rs:
