/root/repo/target/debug/deps/proptests-6de724b158c1846a.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6de724b158c1846a: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
