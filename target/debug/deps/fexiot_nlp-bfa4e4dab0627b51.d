/root/repo/target/debug/deps/fexiot_nlp-bfa4e4dab0627b51.d: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

/root/repo/target/debug/deps/fexiot_nlp-bfa4e4dab0627b51: crates/nlp/src/lib.rs crates/nlp/src/dtw.rs crates/nlp/src/embed.rs crates/nlp/src/features.rs crates/nlp/src/jenks.rs crates/nlp/src/lexicon.rs crates/nlp/src/parse.rs crates/nlp/src/tokenize.rs

crates/nlp/src/lib.rs:
crates/nlp/src/dtw.rs:
crates/nlp/src/embed.rs:
crates/nlp/src/features.rs:
crates/nlp/src/jenks.rs:
crates/nlp/src/lexicon.rs:
crates/nlp/src/parse.rs:
crates/nlp/src/tokenize.rs:
