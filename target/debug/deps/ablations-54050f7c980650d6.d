/root/repo/target/debug/deps/ablations-54050f7c980650d6.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-54050f7c980650d6: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
