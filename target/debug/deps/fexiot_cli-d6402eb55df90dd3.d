/root/repo/target/debug/deps/fexiot_cli-d6402eb55df90dd3.d: crates/core/src/bin/fexiot-cli.rs

/root/repo/target/debug/deps/fexiot_cli-d6402eb55df90dd3: crates/core/src/bin/fexiot-cli.rs

crates/core/src/bin/fexiot-cli.rs:
