/root/repo/target/debug/deps/fexiot-95417a71a863b6ff.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libfexiot-95417a71a863b6ff.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libfexiot-95417a71a863b6ff.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/federation.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/federation.rs:
crates/core/src/pipeline.rs:
