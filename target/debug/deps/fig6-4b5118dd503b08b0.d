/root/repo/target/debug/deps/fig6-4b5118dd503b08b0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4b5118dd503b08b0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
